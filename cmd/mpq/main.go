// Command mpq evaluates Datalog queries with the message-passing engine or
// one of the baseline evaluators.
//
// Usage:
//
//	mpq [-engine message-passing|semi-naive|naive|magic-sets|brute-force]
//	    [-strategy greedy|qualtree|leftright] [-batch] [-stats] [-graph]
//	    [-profile] [-trace-out events.json]
//	    [-data pred=file.csv]... [-i] [program.dl]
//
// Observability (message-passing engine; see doc/OBSERVABILITY.md):
// -profile prints a per-node report after evaluation — top nodes by
// messages, rows, joins, and wall-time, the termination-round timeline,
// and a per-site breakdown. -trace-out writes the evaluation's event log
// as Chrome trace_event JSON, loadable in chrome://tracing or Perfetto.
//
// The program file contains facts, rules, and at least one query — either
// rules for the distinguished predicate goal, or `?- body.` sugar:
//
//	edge(a, b). edge(b, c).
//	path(X, Y) :- edge(X, Y).
//	path(X, Y) :- path(X, U), edge(U, Y).
//	?- path(a, Y).
//
// -data loads tab- or comma-separated rows as extra facts for a predicate.
// With -i, mpq reads clauses interactively after loading the program (if
// any); each `?- body.` query evaluates immediately.
//
// With -connect ADDR, mpq is instead a client for a long-lived
// `mpqd -serve` instance: each argument (or stdin line) is sent as one
// query and the streamed answers are printed as in local evaluation:
//
//	mpq -connect :7700 '?- path(a, Y).'
//
// A `fact edge(a, b).` argument (or stdin line) adds a ground fact to the
// server's EDB instead of querying — the writer half of a subscription.
//
// Adding -subscribe turns the single query into a live view (see
// doc/SUBSCRIPTIONS.md): the current answers print immediately, then mpq
// stays connected and prints each answer the moment a server-side
// AddFact/LoadData mutation makes it derivable, until interrupted:
//
//	mpq -connect :7700 -subscribe '?- path(a, Y).'
//
// With -stats, each round's "~ <n> v=<version>" frame is echoed to
// stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"strings"

	"repro"
	"repro/internal/parser"
	"repro/internal/trace"
	"repro/internal/trace/export"
)

// dataFlags collects repeated -data pred=path flags.
type dataFlags []string

func (d *dataFlags) String() string     { return strings.Join(*d, ",") }
func (d *dataFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	engineName := flag.String("engine", "message-passing", "evaluation engine")
	strategy := flag.String("strategy", "greedy", "information passing strategy: greedy, qualtree, leftright, basic, stats, auto")
	batch := flag.Bool("batch", false, "package tuple requests (footnote 2)")
	stats := flag.Bool("stats", false, "print execution statistics")
	graph := flag.Bool("graph", false, "print the rule/goal graph before evaluating")
	interactive := flag.Bool("i", false, "interactive session")
	traceMsgs := flag.Bool("trace", false, "log every engine message to stderr")
	profile := flag.Bool("profile", false, "print a per-node profile report after evaluation (message-passing engine)")
	profileTop := flag.Int("profile-top", 5, "how many nodes each -profile top-K table shows")
	traceOut := flag.String("trace-out", "", "write the evaluation's event log as Chrome trace_event JSON to this file")
	traceCap := flag.Int("trace-events", 0, "event-log ring capacity for -trace-out (0 = default 65536; oldest events drop first)")
	timeout := flag.Duration("timeout", 0, "abort the evaluation after this wall-clock time (message-passing engine; 0 = none)")
	partitions := flag.Int("partitions", 0, "hash-partitioned worker shards per node process (message-passing engine; 0 = GOMAXPROCS, 1 = sequential)")
	explain := flag.String("explain", "", "'plan' prints the compiled plan (chosen strategy, SIP orders, estimated vs. observed cost); a ground fact like 'path(a,d)' prints its proof tree instead of evaluating")
	connect := flag.String("connect", "", "client mode: send queries to an `mpqd -serve` address instead of evaluating locally")
	tenant := flag.String("tenant", "", "-connect: admission tenant name for fair queueing and quotas (default tenant when empty)")
	subscribe := flag.Bool("subscribe", false, "-connect: subscribe to one query and stream new answers as the server's EDB grows")
	var data dataFlags
	flag.Var(&data, "data", "load pred=file.csv facts (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpq [flags] [program.dl]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *connect != "" {
		var err error
		if *subscribe {
			err = runSubscribe(*connect, *tenant, flag.Args(), *stats)
		} else {
			err = runClient(*connect, *tenant, flag.Args(), *stats)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if *subscribe {
		fatal(fmt.Errorf("-subscribe needs -connect (subscriptions live on an mpqd -serve instance)"))
	}
	eng, err := mpq.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	opts := []mpq.Option{mpq.WithEngine(eng), mpq.WithStrategy(*strategy)}
	if *batch {
		opts = append(opts, mpq.WithBatching())
	}
	if *traceMsgs {
		opts = append(opts, mpq.WithTrace(os.Stderr))
	}
	if *timeout > 0 {
		opts = append(opts, mpq.WithDeadline(*timeout))
	}
	if p := resolvePartitions(*partitions); p >= 2 {
		opts = append(opts, mpq.WithPartitions(p))
	}
	obs := &observer{top: *profileTop, out: *traceOut}
	if *profile {
		obs.prof = trace.NewProfile()
		opts = append(opts, mpq.WithProfile(obs.prof))
	}
	if *traceOut != "" {
		obs.log = trace.NewEventLog(*traceCap)
		opts = append(opts, mpq.WithEventLog(obs.log))
	}

	if *interactive {
		repl(flag.Arg(0), data, opts, *stats, obs)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	sys, err := mpq.LoadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := loadData(sys, data); err != nil {
		fatal(err)
	}
	if *graph {
		g, err := sys.Graph(mpq.WithStrategy(*strategy))
		if err != nil {
			fatal(err)
		}
		fmt.Println(g.Text())
	}
	if *explain == "plan" {
		if err := explainPlan(sys, eng, opts); err != nil {
			fatal(err)
		}
		return
	}
	if *explain != "" {
		if err := printProof(sys, *explain); err != nil {
			fatal(err)
		}
		return
	}
	ans, err := sys.Eval(opts...)
	if err != nil {
		fatal(err)
	}
	printAnswer(ans)
	if *stats {
		printStats(ans, eng)
	}
	if err := obs.finish(); err != nil {
		fatal(err)
	}
}

// runClient is `mpq -connect ADDR`: it sends each argument as one query to
// an `mpqd -serve` instance over the line protocol (doc/PROTOCOL.md) and
// renders the streamed answers exactly like a local evaluation. With no
// arguments, queries are read from stdin, one per line. A nonempty tenant
// is announced first with a "tenant NAME" line, placing the connection's
// queries under that tenant's admission quota and queue.
func runClient(addr, tenant string, queries []string, stats bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if tenant != "" {
		if _, err := fmt.Fprintf(conn, "tenant %s\n", tenant); err != nil {
			return err
		}
	}
	resp := bufio.NewScanner(conn)
	resp.Buffer(make([]byte, 0, 64*1024), 1<<20)

	ask := func(q string) error {
		if _, err := fmt.Fprintf(conn, "%s\n", strings.ReplaceAll(q, "\n", " ")); err != nil {
			return err
		}
		n := 0
		for resp.Scan() {
			line := resp.Text()
			switch {
			case line == "T":
				fmt.Println("yes")
				n++
			case strings.HasPrefix(line, "T "):
				fmt.Println(strings.TrimPrefix(line, "T "))
				n++
			case strings.HasPrefix(line, ". "):
				if n == 0 {
					fmt.Println("no")
				}
				if stats {
					fmt.Fprintf(os.Stderr, "%s\n", strings.TrimPrefix(line, ". "))
				}
				return nil
			case strings.HasPrefix(line, "+ "):
				// Reply to a "fact <atom>." line: was the fact new?
				if strings.HasPrefix(line, "+ 1") {
					fmt.Println("added")
				} else {
					fmt.Println("duplicate")
				}
				if stats {
					fmt.Fprintf(os.Stderr, "%s\n", strings.TrimPrefix(line, "+ "))
				}
				return nil
			case strings.HasPrefix(line, "E "):
				return fmt.Errorf("server: %s", strings.TrimPrefix(line, "E "))
			default:
				return fmt.Errorf("malformed server line %q", line)
			}
		}
		if err := resp.Err(); err != nil {
			return err
		}
		return fmt.Errorf("connection closed mid-response")
	}

	if len(queries) == 0 {
		in := bufio.NewScanner(os.Stdin)
		for in.Scan() {
			q := strings.TrimSpace(in.Text())
			if q == "" {
				continue
			}
			if err := ask(q); err != nil {
				return err
			}
		}
		return in.Err()
	}
	for _, q := range queries {
		if err := ask(q); err != nil {
			return err
		}
	}
	return nil
}

// runSubscribe is `mpq -connect ADDR -subscribe QUERY`: it opens a live
// view over one query (doc/SUBSCRIPTIONS.md) and prints every answer as
// it becomes derivable — the full current set first, then each delta —
// until the connection ends (server shutdown, or the user interrupting
// mpq). Round frames go to stderr with -stats. Output is unbuffered by
// round: each tuple prints the moment its T line arrives, so the stream
// can feed a pipeline.
func runSubscribe(addr, tenant string, queries []string, stats bool) error {
	if len(queries) != 1 {
		return fmt.Errorf("-subscribe wants exactly one query, got %d", len(queries))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if tenant != "" {
		if _, err := fmt.Fprintf(conn, "tenant %s\n", tenant); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(conn, "subscribe %s\n", strings.ReplaceAll(queries[0], "\n", " ")); err != nil {
		return err
	}
	resp := bufio.NewScanner(conn)
	resp.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for resp.Scan() {
		line := resp.Text()
		switch {
		case line == "T":
			fmt.Println("yes")
		case strings.HasPrefix(line, "T "):
			fmt.Println(strings.TrimPrefix(line, "T "))
		case strings.HasPrefix(line, "~ "):
			if stats {
				fmt.Fprintf(os.Stderr, "%s\n", strings.TrimPrefix(line, "~ "))
			}
		case strings.HasPrefix(line, "E "):
			return fmt.Errorf("server: %s", strings.TrimPrefix(line, "E "))
		default:
			return fmt.Errorf("malformed server line %q", line)
		}
	}
	return resp.Err() // EOF: server closed the subscription
}

// observer holds the opt-in observability sinks (-profile, -trace-out) and
// renders them after an evaluation. Each evaluation re-initializes the
// sinks, so in the REPL the report and trace file cover the latest query.
type observer struct {
	prof *trace.Profile
	log  *trace.EventLog
	out  string // -trace-out path
	top  int
}

func (o *observer) finish() error {
	if o.prof != nil {
		fmt.Fprintln(os.Stderr)
		if err := export.WriteReport(os.Stderr, o.prof.Snapshot(), o.top); err != nil {
			return err
		}
	}
	if o.log != nil {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		if err := export.WriteTraceEvents(f, o.log); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", o.out)
	}
	return nil
}

func loadData(sys *mpq.System, data dataFlags) error {
	for _, spec := range data {
		pred, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -data %q, want pred=path", spec)
		}
		n, err := sys.LoadData(pred, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %d %s facts from %s\n", n, pred, path)
	}
	return nil
}

func printAnswer(ans *mpq.Answer) {
	if len(ans.Tuples) == 0 {
		fmt.Println("no")
		return
	}
	for _, t := range ans.Tuples {
		if len(t) == 0 {
			fmt.Println("yes")
			continue
		}
		fmt.Println(strings.Join(t, "\t"))
	}
}

func printStats(ans *mpq.Answer, eng mpq.Engine) {
	if eng == mpq.MessagePassing {
		fmt.Fprintf(os.Stderr, "%s\n", ans.Stats)
	} else {
		fmt.Fprintf(os.Stderr, "iterations=%d derived=%d model=%d joins=%d\n",
			ans.Counts.Iterations, ans.Counts.Derived, ans.Counts.ModelSize, ans.Counts.Joins)
	}
}

// explainPlan is `mpq -explain plan`: print the compiled plan — chosen
// strategy (with the auto planner's candidate scoreboard), each rule's
// SIP evaluation order, and per-step size estimates — then evaluate and
// report estimated vs. observed cost. "Observed" is rows processed: the
// engine's tuple-traffic counters for message passing, candidate tuples
// examined plus derivations for the bottom-up engines.
func explainPlan(sys *mpq.System, eng mpq.Engine, opts []mpq.Option) error {
	text, est, err := sys.ExplainPlan(opts...)
	if err != nil {
		return err
	}
	fmt.Print(text)
	ans, err := sys.Eval(opts...)
	if err != nil {
		return err
	}
	var observed int64
	if eng == mpq.MessagePassing {
		observed = ans.Stats.TupReqRows + ans.Stats.TupleRows + ans.Stats.EDBTuples
	} else {
		observed = ans.Counts.Work()
	}
	obsLog := math.Inf(-1)
	if observed > 0 {
		obsLog = math.Log10(float64(observed))
	}
	fmt.Printf("cost: estimated ~10^%.2f rows, observed %d rows processed (~10^%.2f)\n", est, observed, obsLog)
	return nil
}

// repl reads clauses from stdin. Facts and rules accumulate; `?- body.`
// evaluates immediately against everything accumulated so far. A starting
// program file (optional) seeds the session.
func repl(programPath string, data dataFlags, opts []mpq.Option, stats bool, obs *observer) {
	var clauses []string
	if programPath != "" {
		src, err := os.ReadFile(programPath)
		if err != nil {
			fatal(err)
		}
		clauses = append(clauses, string(src))
	}
	fmt.Println("mpq interactive — enter facts/rules ending with '.', queries as '?- body.'; \\why fact(args). explains, \\list shows clauses, \\q quits")
	sc := bufio.NewScanner(os.Stdin)
	var partial string
	for {
		if partial == "" {
			fmt.Print("mpq> ")
		} else {
			fmt.Print("...> ")
		}
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
			continue
		case `\q`, `\quit`:
			return
		case `\list`:
			fmt.Print(strings.Join(clauses, "\n"))
			fmt.Println()
			continue
		}
		if fact, ok := strings.CutPrefix(line, `\why `); ok {
			src := strings.Join(clauses, "\n") + "\n?- probe_(Z__)."
			sys, err := mpq.Load(src)
			if err != nil {
				fmt.Println(err)
				continue
			}
			if err := loadData(sys, data); err != nil {
				fmt.Println(err)
				continue
			}
			if err := printProof(sys, strings.TrimSuffix(strings.TrimSpace(fact), ".")); err != nil {
				fmt.Println(err)
			}
			continue
		}
		partial += line + "\n"
		if !strings.HasSuffix(line, ".") {
			continue // clause continues on the next line
		}
		clause := partial
		partial = ""
		if strings.HasPrefix(strings.TrimSpace(clause), "?-") {
			evalQuery(clauses, clause, data, opts, stats, obs)
			continue
		}
		// Check the clause stands on its own (syntax, safety) before
		// keeping it; cross-clause conditions are re-checked per query.
		if _, err := mpq.Load(clause + "\n?- probe_(Z)."); err != nil {
			fmt.Println(err)
			continue
		}
		clauses = append(clauses, clause)
	}
}

func evalQuery(clauses []string, query string, data dataFlags, opts []mpq.Option, stats bool, obs *observer) {
	src := strings.Join(clauses, "\n") + "\n" + query
	sys, err := mpq.Load(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := loadData(sys, data); err != nil {
		fmt.Println(err)
		return
	}
	ans, err := sys.Eval(opts...)
	if err != nil {
		fmt.Println(err)
		return
	}
	printAnswer(ans)
	if stats {
		printStats(ans, mpq.MessagePassing)
	}
	if err := obs.finish(); err != nil {
		fmt.Println(err)
	}
}

// printProof parses "pred(c1,c2,...)" and prints why it holds.
func printProof(sys *mpq.System, factSrc string) error {
	prog, err := parser.Parse(factSrc + ".")
	if err != nil {
		return err
	}
	if len(prog.Facts) != 1 {
		return fmt.Errorf("-explain wants one ground fact, got %q", factSrc)
	}
	f := prog.Facts[0]
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Const
	}
	proof, ok := sys.Explain(f.Pred, args...)
	if !ok {
		fmt.Printf("%s does not hold\n", f)
		return nil
	}
	fmt.Print(proof)
	return nil
}

// resolvePartitions maps the -partitions flag to a worker-shard count:
// 0 is "auto" (one shard per available CPU), anything else passes through
// (values below 2 mean sequential evaluation).
func resolvePartitions(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpq:", err)
	os.Exit(1)
}
