// Command mpqd is a site daemon for genuinely distributed query
// evaluation: several mpqd processes — on one machine or many — each host a
// partition of the rule/goal graph and cooperate purely by TCP messages, as
// §1 of the paper envisions ("shared memory is not required, making this
// approach suitable for distributed systems").
//
// Every site is started with the same program file and the same ordered
// address list; graph construction and partitioning are deterministic, so
// all sites agree on who hosts what. Site 0 drives the query and prints the
// answers; the other sites exit once the computation shuts down.
//
//	mpqd -program q.dl -site 0 -addrs :7701,:7702,:7703 &
//	mpqd -program q.dl -site 1 -addrs :7701,:7702,:7703 &
//	mpqd -program q.dl -site 2 -addrs :7701,:7702,:7703
//
// Recursive strong components are always co-located (see engine.Partition).
//
// With -serve ADDR, mpqd instead runs as a long-lived single-site query
// server: it loads the program once and answers `?- body.` queries sent
// over a newline-delimited protocol (see internal/serve and
// doc/PROTOCOL.md), reusing compiled plans across queries through the plan
// cache. Admission is multi-tenant (clients name their tenant with a
// "tenant NAME" line or the X-Mpq-Tenant header): -max-concurrent
// evaluations run at once, -tenant-quota caps any one tenant's share,
// excess requests wait in bounded per-tenant queues drained fairly, and
// requests past -queue-depth are shed immediately with a typed overload
// error. A -result-cache LRU in front of evaluation replays repeated
// (query, constants) answers until any new fact invalidates them. SIGINT
// or SIGTERM drains gracefully: stop accepting, finish in-flight queries
// for up to -drain-timeout, then abort the stragglers. The diagnostics
// mux also accepts queries on POST /query. A "subscribe <query>" line
// turns its connection into a live view: the current answers stream out,
// then each delta as facts are added, re-evaluated incrementally through
// the retained plan (see doc/SUBSCRIPTIONS.md). `mpq -connect ADDR` is
// the matching client (`-subscribe` for live views):
//
//	mpqd -program rules.dl -serve :7700 -max-concurrent 8 &
//	mpq -connect :7700 '?- path(a, Y).'
//	mpq -connect :7700 -subscribe '?- path(a, Y).'
//
// Observability (see doc/OBSERVABILITY.md): -metrics ADDR serves live
// Prometheus counters on /metrics — engine message/row/round counters plus
// the transport failure counters (heartbeats, reconnects, replays, peer
// downs) — and Go runtime profiling under /debug/pprof/. -profile prints a
// per-node report for this site's partition when the query finishes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/trace/export"
	"repro/internal/transport"
)

func main() {
	programPath := flag.String("program", "", "Datalog program file (identical on every site)")
	site := flag.Int("site", 0, "this site's index into -addrs")
	addrList := flag.String("addrs", "", "comma-separated listen addresses, one per site, in site order")
	strategy := flag.String("strategy", "greedy", "information passing strategy (greedy, qualtree, leftright, basic, stats, auto)")
	reoptThreshold := flag.Float64("reopt-threshold", 0, "-serve with -strategy auto: statistics-drift fraction that re-optimizes cached plans (0 = default, negative disables)")
	stats := flag.Bool("stats", false, "print execution statistics (driver site)")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "total window for (re)connecting to a peer site before declaring it down")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "liveness heartbeat interval per peer connection (0 disables heartbeats)")
	maxBackoff := flag.Duration("max-backoff", time.Second, "cap on the exponential reconnect backoff")
	deadline := flag.Duration("deadline", 0, "abort the query after this wall-clock time (0 = no deadline)")
	chaos := flag.String("chaos", "", "fault-injection spec: 'delay:FROM-TO:D[:JITTER];cut:FROM-TO:N[:HEAL];crash:SITE:N' ('*' = any site)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for deterministic chaos jitter")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and /debug/pprof/ on this address (e.g. :9090)")
	profile := flag.Bool("profile", false, "print a per-node profile report for this site's partition after the query")
	profileTop := flag.Int("profile-top", 5, "how many nodes each -profile top-K table shows")
	serveAddr := flag.String("serve", "", "single-site serving mode: accept queries on this address over the line protocol (see doc/PROTOCOL.md) instead of evaluating once")
	maxConcurrent := flag.Int("max-concurrent", 0, "-serve: how many queries evaluate at once (0 = GOMAXPROCS; excess queries queue per tenant)")
	tenantQuota := flag.Int("tenant-quota", 0, "-serve: cap one tenant's share of -max-concurrent (0 = no per-tenant cap)")
	queueDepth := flag.Int("queue-depth", 0, "-serve: bound each tenant's admission queue (0 = default; beyond it requests are shed)")
	resultCache := flag.Int("result-cache", 0, "-serve: result-cache entries (0 = default, negative disables)")
	sloObjective := flag.Duration("slo", 0, "-serve: end-to-end latency objective feeding the SLO burn-rate gauge (0 = off)")
	sloTarget := flag.Float64("slo-target", 0.99, "-serve: fraction of requests that should meet -slo")
	sloWindow := flag.Duration("slo-window", time.Minute, "-serve: sliding window for the burn-rate gauge")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "-serve: how long SIGINT/SIGTERM lets in-flight queries finish before aborting them")
	batch := flag.Bool("batch", false, "-serve: evaluate with footnote-2 request batching")
	partitions := flag.Int("partitions", 0, "hash-partitioned worker shards per node process (-serve: 0 = GOMAXPROCS; multi-site: must be set identically on every site, 0 = sequential)")
	store := flag.String("store", "", "-serve: persistent EDB directory (created on first run; facts, statistics epoch, and result-cache version survive restarts)")
	flag.Parse()

	if *serveAddr != "" {
		runServe(*serveAddr, *programPath, *metricsAddr, *store, *drainTimeout, serve.Config{
			Strategy:        *strategy,
			ReoptThreshold:  *reoptThreshold,
			Batch:           *batch,
			Partitions:      resolvePartitions(*partitions),
			MaxConcurrent:   *maxConcurrent,
			Quota:           *tenantQuota,
			QueueDepth:      *queueDepth,
			ResultCacheSize: *resultCache,
			SLOObjective:    *sloObjective,
			SLOTarget:       *sloTarget,
			SLOWindow:       *sloWindow,
			Timeout:         *deadline,
		})
		return
	}

	addrs := strings.Split(*addrList, ",")
	if *programPath == "" || len(addrs) < 2 || *site < 0 || *site >= len(addrs) {
		fmt.Fprintln(os.Stderr, "usage: mpqd -program q.dl -site N -addrs a0,a1,... (N < number of addresses)")
		fmt.Fprintln(os.Stderr, "   or: mpqd -program q.dl -serve ADDR [-max-concurrent N] [-deadline D] [-metrics ADDR]")
		os.Exit(2)
	}

	sys, err := mpq.LoadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	g, err := sys.Graph(mpq.WithStrategy(*strategy))
	if err != nil {
		fatal(err)
	}
	hosts := engine.Partition(g, len(addrs))

	st := &trace.Stats{}
	if *metricsAddr != "" {
		mux := export.DiagnosticsMux(st.Snapshot)
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			fmt.Fprintf(os.Stderr, "mpqd: site %d diagnostics on http://%s/metrics\n", *site, *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "mpqd: metrics server: %v\n", err)
			}
		}()
	}
	cfg := transport.Config{
		DialTimeout:       *dialTimeout,
		HeartbeatInterval: *heartbeat,
		MaxBackoff:        *maxBackoff,
		Stats:             st,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mpqd: "+format+"\n", args...)
		},
	}
	if *heartbeat == 0 {
		cfg.HeartbeatInterval = transport.NoHeartbeat
	}

	local := transport.NewLocal(len(g.Nodes) + 1)
	tcp, err := transport.NewTCPConfig(*site, addrs, hosts, local, cfg)
	if err != nil {
		fatal(err)
	}
	defer tcp.Close()
	fmt.Fprintf(os.Stderr, "mpqd: site %d listening on %s, hosting %d of %d nodes\n",
		*site, tcp.Addr(), count(hosts[:len(g.Nodes)], *site), len(g.Nodes))

	// Merge transport failure events (and, under -chaos, injected crashes)
	// into one channel for the engine's watchdog.
	down := make(chan transport.PeerDown, len(addrs)+1)
	forward := func(ch <-chan transport.PeerDown) {
		go func() {
			for pd := range ch {
				select {
				case down <- pd:
				default:
				}
			}
		}()
	}
	forward(tcp.Down())

	var net transport.Network = tcp
	if *chaos != "" {
		links, crashes, err := transport.ParseChaos(*chaos)
		if err != nil {
			fatal(err)
		}
		fn := transport.NewFaultNet(tcp, hosts, *chaosSeed)
		fn.Stats = st
		for _, l := range links {
			fn.AddLink(l)
		}
		for _, c := range crashes {
			fn.AddCrash(c)
		}
		// Crashing our own site means this daemon's processes die too.
		fn.OnCrash(*site, func() { local.Close() })
		forward(fn.Down())
		defer fn.Close()
		net = fn
	}

	// Multi-site: shard planning is a pure function of (graph, partition
	// count), and senders stamp shard routes for remote nodes too, so every
	// site must run the same count. GOMAXPROCS can differ across machines —
	// no auto here; the flag must be set explicitly (and identically).
	// SIGINT/SIGTERM cancel the evaluation (it aborts with ErrCancelled)
	// instead of killing the process mid-protocol.
	sig, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	opts := engine.Options{Stats: st, Deadline: *deadline, PeerDown: down,
		Partitions: *partitions, Cancel: sig.Done()}
	var prof *trace.Profile
	if *profile {
		prof = trace.NewProfile()
		opts.Profile = prof
	}
	res, err := engine.RunSites(g, sys.DB, net, local, hosts, *site, opts)
	if err != nil {
		fatal(err)
	}
	if prof != nil {
		fmt.Fprintf(os.Stderr, "\nsite %d partition:\n", *site)
		if err := export.WriteReport(os.Stderr, prof.Snapshot(), *profileTop); err != nil {
			fatal(err)
		}
	}
	if res == nil {
		fmt.Fprintf(os.Stderr, "mpqd: site %d done\n", *site)
		return
	}
	if res.Answers.Len() == 0 {
		fmt.Println("no")
	}
	for _, row := range res.Answers.Sorted() {
		parts := make([]string, len(row))
		for i, sym := range row {
			parts[i] = sys.DB.Syms.String(sym)
		}
		if len(parts) == 0 {
			fmt.Println("yes")
		} else {
			fmt.Println(strings.Join(parts, "\t"))
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%s\n", res.Stats)
	}
}

// runServe is the long-lived single-site mode: load the program once,
// answer queries over the line protocol until SIGINT/SIGTERM, reusing
// compiled plans across queries and connections. The diagnostics mux
// additionally gains POST /query. On a signal the server drains: new
// work is rejected, in-flight queries get drainTimeout to finish, then
// the rest are aborted with mpq.ErrCancelled.
func runServe(addr, programPath, metricsAddr, storeDir string, drainTimeout time.Duration, cfg serve.Config) {
	if programPath == "" {
		fmt.Fprintln(os.Stderr, "usage: mpqd -program q.dl -serve ADDR [-store DIR] [-max-concurrent N] [-deadline D] [-metrics ADDR]")
		os.Exit(2)
	}
	var sys *mpq.System
	var err error
	if storeDir != "" {
		// Persistent EDB: recover facts, the statistics epoch, and the
		// result-cache version from the store, then replay the program's own
		// facts idempotently (see mpq.OpenSystem).
		var src []byte
		if src, err = os.ReadFile(programPath); err == nil {
			sys, err = mpq.OpenSystem(storeDir, string(src))
		}
		if err == nil {
			defer sys.Close()
			fmt.Fprintf(os.Stderr, "mpqd: persistent EDB %s recovered at version %d (%d facts)\n",
				storeDir, sys.EDBVersion(), sys.DB.Facts())
		}
	} else {
		sys, err = mpq.LoadFile(programPath)
	}
	if err != nil {
		fatal(err)
	}
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mpqd: "+format+"\n", args...)
	}
	srv := serve.New(sys, cfg)
	var metricsSrv *http.Server
	if metricsAddr != "" {
		mux := export.DiagnosticsMux(srv.Stats().Snapshot)
		mux.Handle("/query", srv.Handler())
		metricsSrv = &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			fmt.Fprintf(os.Stderr, "mpqd: diagnostics on http://%s/metrics, queries on POST /query\n", metricsAddr)
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "mpqd: metrics server: %v\n", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	sig, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "mpqd: serving %s on %s\n", programPath, ln.Addr())
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case <-sig.Done():
		fmt.Fprintf(os.Stderr, "mpqd: signal received, draining for up to %v\n", drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mpqd: drain deadline hit, in-flight queries aborted\n")
		} else {
			fmt.Fprintf(os.Stderr, "mpqd: drained cleanly\n")
		}
		if metricsSrv != nil {
			sctx, scancel := context.WithTimeout(context.Background(), time.Second)
			metricsSrv.Shutdown(sctx)
			scancel()
		}
	}
}

// resolvePartitions maps the -partitions flag to a worker-shard count:
// 0 is "auto" (one shard per available CPU), anything else passes through
// (values below 2 mean sequential evaluation).
func resolvePartitions(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func count(hosts []int, site int) int {
	n := 0
	for _, h := range hosts {
		if h == site {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpqd:", err)
	os.Exit(1)
}
