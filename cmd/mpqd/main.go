// Command mpqd is a site daemon for genuinely distributed query
// evaluation: several mpqd processes — on one machine or many — each host a
// partition of the rule/goal graph and cooperate purely by TCP messages, as
// §1 of the paper envisions ("shared memory is not required, making this
// approach suitable for distributed systems").
//
// Every site is started with the same program file and the same ordered
// address list; graph construction and partitioning are deterministic, so
// all sites agree on who hosts what. Site 0 drives the query and prints the
// answers; the other sites exit once the computation shuts down.
//
//	mpqd -program q.dl -site 0 -addrs :7701,:7702,:7703 &
//	mpqd -program q.dl -site 1 -addrs :7701,:7702,:7703 &
//	mpqd -program q.dl -site 2 -addrs :7701,:7702,:7703
//
// Recursive strong components are always co-located (see engine.Partition).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/engine"
	"repro/internal/transport"
)

func main() {
	programPath := flag.String("program", "", "Datalog program file (identical on every site)")
	site := flag.Int("site", 0, "this site's index into -addrs")
	addrList := flag.String("addrs", "", "comma-separated listen addresses, one per site, in site order")
	strategy := flag.String("strategy", "greedy", "information passing strategy")
	stats := flag.Bool("stats", false, "print execution statistics (driver site)")
	flag.Parse()

	addrs := strings.Split(*addrList, ",")
	if *programPath == "" || len(addrs) < 2 || *site < 0 || *site >= len(addrs) {
		fmt.Fprintln(os.Stderr, "usage: mpqd -program q.dl -site N -addrs a0,a1,... (N < number of addresses)")
		os.Exit(2)
	}

	sys, err := mpq.LoadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	g, err := sys.Graph(mpq.WithStrategy(*strategy))
	if err != nil {
		fatal(err)
	}
	hosts := engine.Partition(g, len(addrs))

	local := transport.NewLocal(len(g.Nodes) + 1)
	net, err := transport.NewTCP(*site, addrs, hosts, local)
	if err != nil {
		fatal(err)
	}
	defer net.Close()
	fmt.Fprintf(os.Stderr, "mpqd: site %d listening on %s, hosting %d of %d nodes\n",
		*site, net.Addr(), count(hosts[:len(g.Nodes)], *site), len(g.Nodes))

	res, err := engine.RunSites(g, sys.DB, net, local, hosts, *site, engine.Options{})
	if err != nil {
		fatal(err)
	}
	if res == nil {
		fmt.Fprintf(os.Stderr, "mpqd: site %d done\n", *site)
		return
	}
	if res.Answers.Len() == 0 {
		fmt.Println("no")
	}
	for _, row := range res.Answers.Sorted() {
		parts := make([]string, len(row))
		for i, sym := range row {
			parts[i] = sys.DB.Syms.String(sym)
		}
		if len(parts) == 0 {
			fmt.Println("yes")
		} else {
			fmt.Println(strings.Join(parts, "\t"))
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%s\n", res.Stats)
	}
}

func count(hosts []int, site int) int {
	n := 0
	for _, h := range hosts {
		if h == site {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpqd:", err)
	os.Exit(1)
}
