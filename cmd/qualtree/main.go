// Command qualtree analyzes rules with the §4 machinery: it builds each
// rule's evaluation hypergraph (Definition 4.1), runs the Graham reduction,
// reports the monotone flow property, and prints the qual tree and the
// derived information passing strategy. With -example41 it analyzes the
// paper's rules R1, R2, R3, regenerating Figures 3 and 4; with -fig5 it
// demonstrates qual tree composition (Theorem 4.2).
//
// Usage:
//
//	qualtree [-alpha 0.3] [-example41 | -fig5 | program.dl]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/costmodel"
	"repro/internal/hypergraph"
	"repro/internal/parser"
)

const example41 = `
	p(X, Z) :- a(X, Y), b(Y, U), c(U, Z).
	p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).
	p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).
	goal(Z) :- p(x0, Z).
	a(x0, x0). a(x0, x0, x0). b(x0, x0). b(x0, x0, x0).
	c(x0, x0). c(x0, x0, x0). d(x0). e(x0, x0).
`

func main() {
	alpha := flag.Float64("alpha", 0.3, "cost model α (footnote 5)")
	ex41 := flag.Bool("example41", false, "analyze the paper's rules R1, R2, R3 (Figures 3-4)")
	fig5 := flag.Bool("fig5", false, "demonstrate qual tree composition (Figure 5, Theorem 4.2)")
	flag.Parse()

	if *fig5 {
		composeDemo()
		return
	}
	var prog *ast.Program
	var err error
	switch {
	case *ex41:
		prog, err = parser.Parse(example41)
	case flag.NArg() == 1:
		prog, err = parser.ParseFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: qualtree [-alpha a] [-example41 | -fig5 | program.dl]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qualtree:", err)
		os.Exit(1)
	}

	model := costmodel.Model{Alpha: *alpha, BaseLog: 6}
	for i, rule := range prog.Rules {
		if rule.Head.Pred == ast.GoalPred {
			continue
		}
		headAd := defaultAdornment(rule)
		fmt.Printf("rule %d: %s   [head %s]\n", i+1, rule, adorn.AdornedAtom{Atom: rule.Head, Ad: headAd})
		h := adorn.EvaluationHypergraph(rule, headAd)
		fmt.Println("  evaluation hypergraph:")
		for _, e := range h.Edges {
			fmt.Printf("    %s\n", e)
		}
		red := h.Reduce()
		fmt.Println("  Graham (GYO) reduction:")
		for _, step := range red.Steps {
			fmt.Printf("    %s\n", step)
		}
		if red.Acyclic {
			fmt.Println("  acyclic: yes — the rule has the MONOTONE FLOW property")
			qt, _ := h.QualTree(0)
			fmt.Print(indent(qt.String(), "  qual tree:\n    ", "    "))
			sip, _ := adorn.QualTreeSIP(rule, headAd)
			fmt.Printf("  qual-tree strategy (Thm 4.1, greedy): %s\n", sip)
			if step := sip.IsGreedy(); step != -1 {
				fmt.Printf("  WARNING: strategy violates the greedy condition at step %d\n", step)
			}
			gap := costmodel.GreedyGap(rule, headAd, model)
			fmt.Printf("  §4.3 cost model (α=%.2f): greedy vs optimal gap = %.3f log-cost\n", *alpha, gap)
		} else {
			fmt.Println("  acyclic: NO — the rule lacks the monotone flow property")
			fmt.Println("  (the reduction stalls on a cyclic core; no qual tree exists)")
			sip := adorn.Greedy(rule, headAd)
			fmt.Printf("  greedy strategy (fallback): %s\n", sip)
		}
		fmt.Println()
	}
}

// defaultAdornment binds the first head argument ("d") and leaves the rest
// free, matching the paper's running examples p(Xᵈ, Zᶠ).
func defaultAdornment(rule ast.Rule) adorn.Adornment {
	ad := make(adorn.Adornment, len(rule.Head.Args))
	for i := range ad {
		if i == 0 {
			ad[i] = adorn.Dynamic
		} else {
			ad[i] = adorn.Free
		}
	}
	return ad
}

func indent(s, first, rest string) string {
	out := first
	for i, r := range s {
		out += string(r)
		if r == '\n' && i != len(s)-1 {
			out += rest
		}
	}
	return out
}

// composeDemo reproduces Figure 5: the qual tree of r(Xᵈ) :- q(X,Y), s(Y),
// p(Y,Z) composed with the tree of p(Yᵈ,Zᶠ) :- a(Y,W), b(W,Z) by resolving
// on the leaf p.
func composeDemo() {
	hu := hypergraph.Evaluation("r", []string{"X"}, []hypergraph.Edge{
		hypergraph.NewEdge("q", "X", "Y"),
		hypergraph.NewEdge("s", "Y"),
		hypergraph.NewEdge("p", "Y", "Z"),
	})
	tu, _ := hu.QualTree(0)
	fmt.Println("upper rule r(Xᵈ) :- q(X,Y), s(Y), p(Y,Z); qual tree:")
	fmt.Print(tu)
	hw := hypergraph.Evaluation("p", []string{"Y"}, []hypergraph.Edge{
		hypergraph.NewEdge("a", "Y", "W"),
		hypergraph.NewEdge("b", "W", "Z"),
	})
	tw, _ := hw.QualTree(0)
	fmt.Println("lower rule p(Yᵈ,Zᶠ) :- a(Y,W), b(W,Z); qual tree:")
	fmt.Print(tw)
	_, tc, err := hypergraph.Compose(tu, 3, tw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qualtree:", err)
		os.Exit(1)
	}
	fmt.Println("composed (resolve on leaf p; Theorem 4.2):")
	fmt.Print(tc)
	if v := tc.Check(); v != "" {
		fmt.Printf("qual tree property VIOLATED at %s\n", v)
	} else {
		fmt.Println("qual tree property holds ✓")
	}
}
