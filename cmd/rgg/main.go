// Command rgg prints information-passing rule/goal graphs (§2 of the
// paper) for a program, in text or Graphviz dot form. With -p1 it prints
// the graph for the paper's Example 2.1 program, regenerating Figure 1.
//
// Usage:
//
//	rgg [-strategy greedy|qualtree|leftright] [-dot] [-p1 | program.dl]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

// p1 is the paper's Example 2.1: query p(a, Z) over the doubly recursive
// rule. The EDB facts only establish r and q as extensional predicates; the
// graph does not depend on them (Theorem 2.1).
const p1 = `
	goal(Z) :- p(a, Z).
	p(X, Y) :- p(X, U), q(U, V), p(V, Y).
	p(X, Y) :- r(X, Y).
	r(x0, x1). q(x1, x1).
`

func main() {
	strategy := flag.String("strategy", "greedy", "information passing strategy: greedy, qualtree, leftright, basic, stats")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text")
	fig1 := flag.Bool("p1", false, "use the paper's Example 2.1 program (Figure 1)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rgg [flags] [program.dl]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var sys *mpq.System
	var err error
	switch {
	case *fig1:
		sys, err = mpq.Load(p1)
	case flag.NArg() == 1:
		sys, err = mpq.LoadFile(flag.Arg(0))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rgg:", err)
		os.Exit(1)
	}
	g, err := sys.Graph(mpq.WithStrategy(*strategy))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rgg:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(g.DOT())
	} else {
		fmt.Print(g.Text())
	}
}
