// Command apisnap snapshots the exported API of the public mpq package
// (import path "repro") as a sorted, one-declaration-per-line text dump —
// functions, methods, types with their exported fields, constants, and
// variables, each with its full type signature.
//
// The checked-in golden lives at api/mpq.txt. scripts/check.sh runs
//
//	apisnap -check api/mpq.txt
//
// as an API-compatibility gate: a refactor that changes the public surface
// fails the gate until the golden is deliberately regenerated with
//
//	go run ./cmd/apisnap > api/mpq.txt
//
// making every API change an explicit, reviewable diff. apisnap is
// stdlib-only (go/types with the source importer) and must run from the
// repository root.
package main

import (
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

func main() {
	pkgPath := flag.String("pkg", "repro", "import path of the package to snapshot")
	check := flag.String("check", "", "compare the snapshot against this golden file instead of printing; exit 1 on any difference")
	flag.Parse()

	lines, err := snapshot(*pkgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisnap:", err)
		os.Exit(1)
	}
	if *check == "" {
		for _, l := range lines {
			fmt.Println(l)
		}
		return
	}
	want, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisnap:", err)
		os.Exit(1)
	}
	if diff := compare(splitLines(string(want)), lines); len(diff) > 0 {
		fmt.Fprintf(os.Stderr, "apisnap: exported API differs from %s:\n", *check)
		for _, d := range diff {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		fmt.Fprintf(os.Stderr, "apisnap: if the change is intended, regenerate with: go run ./cmd/apisnap > %s\n", *check)
		os.Exit(1)
	}
}

// snapshot type-checks the package from source and renders every exported
// declaration as one line.
func snapshot(pkgPath string) ([]string, error) {
	fset := token.NewFileSet()
	pkg, err := importer.ForCompiler(fset, "source", nil).Import(pkgPath)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", pkgPath, err)
	}
	qual := types.RelativeTo(pkg)
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			lines = append(lines, "func "+o.Name()+strings.TrimPrefix(types.TypeString(o.Type(), qual), "func"))
		case *types.Const:
			lines = append(lines, fmt.Sprintf("const %s %s", o.Name(), types.TypeString(o.Type(), qual)))
		case *types.Var:
			lines = append(lines, fmt.Sprintf("var %s %s", o.Name(), types.TypeString(o.Type(), qual)))
		case *types.TypeName:
			lines = append(lines, typeLines(o, qual)...)
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// typeLines renders one exported named type: its kind, exported struct
// fields or interface methods, and every exported method in its pointer
// method set.
func typeLines(o *types.TypeName, qual types.Qualifier) []string {
	var lines []string
	name := o.Name()
	if o.IsAlias() {
		return []string{fmt.Sprintf("type %s = %s", name, types.TypeString(o.Type(), qual))}
	}
	named := o.Type().(*types.Named)
	switch u := named.Underlying().(type) {
	case *types.Struct:
		lines = append(lines, fmt.Sprintf("type %s struct", name))
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Exported() {
				lines = append(lines, fmt.Sprintf("field %s.%s %s", name, f.Name(), types.TypeString(f.Type(), qual)))
			}
		}
	case *types.Interface:
		lines = append(lines, fmt.Sprintf("type %s interface", name))
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			if m.Exported() {
				lines = append(lines, fmt.Sprintf("method %s.%s%s", name, m.Name(),
					strings.TrimPrefix(types.TypeString(m.Type(), qual), "func")))
			}
		}
	default:
		lines = append(lines, fmt.Sprintf("type %s %s", name, types.TypeString(u, qual)))
	}
	// The pointer method set covers value receivers too.
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if !m.Exported() {
			continue
		}
		recv := name
		if _, ptr := m.Type().(*types.Signature).Recv().Type().(*types.Pointer); ptr {
			recv = "*" + name
		}
		lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, m.Name(),
			strings.TrimPrefix(types.TypeString(m.Type(), qual), "func")))
	}
	return lines
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimRight(l, "\r"); l != "" {
			out = append(out, l)
		}
	}
	return out
}

// compare reports golden-vs-current differences as +/- lines.
func compare(want, got []string) []string {
	wantSet := make(map[string]bool, len(want))
	for _, l := range want {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, l := range got {
		gotSet[l] = true
	}
	var diff []string
	for _, l := range want {
		if !gotSet[l] {
			diff = append(diff, "- "+l) // in the golden, gone from the API
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			diff = append(diff, "+ "+l) // new in the API, absent from the golden
		}
	}
	return diff
}
