package mpq

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// autoCorpus holds the equivalence-test programs: one non-recursive join,
// one recursive closure, one with a cartesian trap — shapes where the
// candidate strategies genuinely order subgoals differently.
var autoCorpus = []struct {
	name string
	src  string
}{
	{"join", `
		r(a, b). r(a, c). r(b, d). r(c, d).
		s(a). s(b).
		goal(Y) :- r(X, Y), s(X).
	`},
	{"closure", `
		edge(a, b). edge(b, c). edge(c, d). edge(d, e). edge(b, e).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		?- path(a, Y).
	`},
	{"threeway", `
		p(a, b). p(b, c). p(a, c).
		q(b, x). q(c, y). q(c, z).
		t(x). t(y).
		goal(A, C) :- p(A, B), q(B, C), t(C).
	`},
}

// TestAutoMatchesManualStrategies is the adaptive-planning correctness
// property: strategy=auto produces byte-identical answers to every manual
// strategy on every corpus program, sequential and partitioned. Plans may
// differ; answers may not.
func TestAutoMatchesManualStrategies(t *testing.T) {
	manual := []string{"greedy", "qualtree", "leftright", "basic", "stats"}
	for _, prog := range autoCorpus {
		for _, parts := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/partitions=%d", prog.name, parts), func(t *testing.T) {
				auto, err := MustLoad(prog.src).Eval(WithStrategy("auto"), WithPartitions(parts))
				if err != nil {
					t.Fatalf("auto: %v", err)
				}
				want := fmt.Sprint(auto.Tuples)
				for _, s := range manual {
					ans, err := MustLoad(prog.src).Eval(WithStrategy(s), WithPartitions(parts))
					if err != nil {
						t.Fatalf("%s: %v", s, err)
					}
					if got := fmt.Sprint(ans.Tuples); got != want {
						t.Errorf("strategy %s answers %s, auto answers %s", s, got, want)
					}
				}
			})
		}
	}
}

// TestAutoChoiceRecorded checks the decision trail: a prepared auto plan
// exposes its winning candidate, the full scoreboard, and the statistics
// epoch it planned against, and its cache key embeds both.
func TestAutoChoiceRecorded(t *testing.T) {
	sys := MustLoad(autoCorpus[0].src)
	st := &trace.Stats{}
	pq, err := sys.Prepare("?- r(X, Y), s(X).", WithStrategy("auto"), WithStats(st))
	if err != nil {
		t.Fatal(err)
	}
	c := pq.Choice()
	if c == nil {
		t.Fatal("auto plan has no recorded choice")
	}
	if c.Fallback != nil {
		t.Fatalf("unexpected fallback: %v", c.Fallback)
	}
	if len(c.Candidates) != 4 {
		t.Fatalf("scored %d candidates, want 4: %v", len(c.Candidates), c.Candidates)
	}
	if c.Strategy != pq.ChosenStrategy() {
		t.Errorf("ChosenStrategy %q != choice %q", pq.ChosenStrategy(), c.Strategy)
	}
	if want := fmt.Sprintf("auto:%s@%d", c.Strategy, c.StatsEpoch); !strings.Contains(pq.CacheKey(), want) {
		t.Errorf("CacheKey %q does not embed %q", pq.CacheKey(), want)
	}
	snap := st.Snapshot()
	total := snap.StrategyAutoGreedy + snap.StrategyAutoQualtree + snap.StrategyAutoLeftright + snap.StrategyAutoCost
	if total != 1 {
		t.Errorf("auto decision counters sum to %d, want 1", total)
	}
	if snap.StatsRefreshes != 1 {
		t.Errorf("StatsRefreshes = %d, want 1", snap.StatsRefreshes)
	}
	if !strings.Contains(pq.ExplainPlan(), "candidates:") {
		t.Errorf("ExplainPlan lacks candidate scoreboard:\n%s", pq.ExplainPlan())
	}
}

// TestAutoFallbackNoStats: with an empty EDB the planner cannot cost
// anything; it must fall back to greedy and record a typed sentinel rather
// than fail or guess silently.
func TestAutoFallbackNoStats(t *testing.T) {
	sys := MustLoad(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		?- path(a, Y).
	`)
	pq, err := sys.Prepare("?- path(a, Y).", WithStrategy("auto"))
	if err != nil {
		t.Fatal(err)
	}
	c := pq.Choice()
	if c == nil || c.Fallback == nil {
		t.Fatalf("want recorded fallback, got %+v", c)
	}
	if !errors.Is(c.Fallback, ErrNoStats) {
		t.Errorf("fallback %v is not ErrNoStats", c.Fallback)
	}
	if c.Strategy != "greedy" {
		t.Errorf("fallback strategy %q, want greedy", c.Strategy)
	}
	if ans, err := pq.Eval(nil); err != nil || len(ans.Tuples) != 0 {
		t.Errorf("empty-EDB eval: %v answers, err %v", ans, err)
	}
}

// reoptTrap is a program whose best ordering flips with the data: while r
// and s are both tiny every candidate ties (greedy wins as the earliest);
// once r is bulk-loaded with many rows over few distinct keys, the
// stats-backed ordering (s first, then r with its key bound) is decisively
// cheaper, so the winning candidate — and the plan — changes.
const reoptTrap = `
	r(k0, v0).
	s(k0).
	goal(Y) :- r(X, Y), s(X).
`

// TestAutoReoptOnDrift: a cached auto plan must be re-optimized after the
// EDB drifts past the threshold, observably (PlanReopts counter, changed
// CacheKey) and correctly (answers match a fresh evaluation).
func TestAutoReoptOnDrift(t *testing.T) {
	sys := MustLoad(reoptTrap)
	st := &trace.Stats{}
	opts := []Option{WithStrategy("auto"), WithStats(st)}
	ans, err := sys.Query(nil, "?- r(X, Y), s(X).", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Tuples) != 1 {
		t.Fatalf("initial answers %v", ans.Tuples)
	}
	pq0, _, _, err := sys.QueryPrepared("?- r(X, Y), s(X).", opts...)
	if err != nil {
		t.Fatal(err)
	}
	key0 := pq0.CacheKey()

	// Shift the distribution: r becomes large with heavy key skew.
	for i := 0; i < 2000; i++ {
		sys.AddFact("r", fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
	}
	sys.AddFact("s", "k3")

	ans2, err := sys.Query(nil, "?- r(X, Y), s(X).", opts...)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := MustLoadSystemCopy(sys).Query(nil, "?- r(X, Y), s(X).", WithStrategy("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(ans2.Tuples), fmt.Sprint(fresh.Tuples); got != want {
		t.Errorf("post-drift answers %s, want %s", got, want)
	}
	snap := st.Snapshot()
	if snap.PlanReopts < 1 {
		t.Errorf("PlanReopts = %d, want >= 1", snap.PlanReopts)
	}
	pq1, _, reused, err := sys.QueryPrepared("?- r(X, Y), s(X).", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Error("re-optimized plan was not served from the cache")
	}
	if pq1.CacheKey() == key0 {
		t.Errorf("CacheKey unchanged across re-optimization: %q", key0)
	}
}

// TestAutoReoptDisabled: a negative threshold must pin the cached plan no
// matter how far the statistics drift.
func TestAutoReoptDisabled(t *testing.T) {
	sys := MustLoad(reoptTrap)
	st := &trace.Stats{}
	opts := []Option{WithStrategy("auto"), WithStats(st), WithReoptThreshold(-1)}
	if _, err := sys.Query(nil, "?- r(X, Y), s(X).", opts...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		sys.AddFact("r", fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
	}
	if _, err := sys.Query(nil, "?- r(X, Y), s(X).", opts...); err != nil {
		t.Fatal(err)
	}
	if snap := st.Snapshot(); snap.PlanReopts != 0 {
		t.Errorf("PlanReopts = %d with re-opt disabled", snap.PlanReopts)
	}
}

// MustLoadSystemCopy rebuilds a fresh System over the same program text
// (facts included), for answer-equivalence checks after mutation.
func MustLoadSystemCopy(s *System) *System {
	var b strings.Builder
	for _, f := range s.Program.Facts {
		fmt.Fprintf(&b, "%s.\n", f)
	}
	for _, r := range s.Program.Rules {
		fmt.Fprintf(&b, "%s\n", r) // Rule.String includes the period
	}
	return MustLoad(b.String())
}

// TestAutoPlanningRace interleaves AddFact (statistics updates) with
// concurrent auto planning and evaluation. Evaluations must not overlap
// mutation (the System contract), so — like the serving layer — reads go
// through the read side of an RWMutex and AddFact through the write side;
// planning itself (statistics snapshots, candidate builds, drift checks)
// is internally locked and runs with no external synchronization. Run
// under -race this pins the planner's concurrency story.
func TestAutoPlanningRace(t *testing.T) {
	sys := MustLoad(reoptTrap)
	st := &trace.Stats{}
	opts := []Option{WithStrategy("auto"), WithStats(st)}
	var evalMu sync.RWMutex
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			evalMu.Lock()
			sys.AddFact("r", fmt.Sprintf("k%d", i%7), fmt.Sprintf("w%d", i))
			evalMu.Unlock()
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pq, args, _, err := sys.QueryPrepared("?- r(X, Y), s(X).", opts...)
				if err != nil {
					t.Errorf("QueryPrepared: %v", err)
					return
				}
				evalMu.RLock()
				_, err = pq.Eval(nil, args...)
				evalMu.RUnlock()
				if err != nil {
					t.Errorf("Eval: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
