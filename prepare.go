package mpq

import (
	"container/list"
	"context"
	"fmt"
	"iter"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rgg"
	"repro/internal/symtab"
	"repro/internal/trace"
)

// PreparedQuery is a query compiled once against a System and evaluable
// many times with different constants. Prepare canonicalizes the query's
// constants into parameters: each constant occurrence in the body becomes a
// fresh variable carried through to the entry goal, whose argument position
// is adorned "d" (dynamically bound) instead of "c" — so the rule/goal
// graph is built for the query's *shape*, and each evaluation seeds the
// parameters at runtime through the driver's initial tuple request, the
// same channel every interior node already uses. Re-evaluation therefore
// performs zero graph builds and zero index warming, and the engine's
// per-node scratch is pooled between runs (engine.Plan).
//
// A PreparedQuery is safe for concurrent use. It reads the System's base
// relations without locks, so — like all evaluations — it must not overlap
// with AddFact/LoadData mutation.
type PreparedQuery struct {
	sys      *System
	plan     *engine.Plan
	strategy string
	shape    string
	defaults []string     // source-text constants: the bindings Eval() uses with no args
	nout     int          // answer columns (parameters are projected away)
	batch    bool
	// partitions is the WithPartitions setting the plan serves. It is part
	// of the plan-cache key: engine.Plan pools per-run scratch whose worker
	// wiring is structural, so plans for different partition counts must
	// not alias.
	partitions int
	edbDelay   time.Duration // WithEDBDelay simulated retrieval latency
	stats      *trace.Stats  // Prepare-time WithStats accumulator, nil for per-call stats

	// choice is the auto planner's decision (nil for manual strategies)
	// and fingerprint the compiled graph's evaluation orders
	// (rgg.PlanFingerprint). statsEpoch starts at the planning-time
	// statistics epoch and advances when a drift check re-scores the
	// candidates and finds this plan still best — it is atomic because
	// drift checks run concurrently with CacheKey readers.
	choice      *AutoChoice
	fingerprint string
	statsEpoch  atomic.Uint64
}

// parsedQuery is the outcome of canonicalizing one query's source text.
type parsedQuery struct {
	rule   ast.Rule // rewritten query rule: constants replaced by parameter variables
	consts []string // the replaced constants, in occurrence order
	shape  string   // canonical text: equal across queries differing only in constants
}

// paramVar names the i-th parameter. The "$" prefix cannot collide with
// user variables (the lexer only produces uppercase-initial names).
func paramVar(i int) string { return fmt.Sprintf("$p%d", i) }

func isParamVar(name string) bool { return strings.HasPrefix(name, "$p") }

// parseQuery parses src as a single query — `?- body.` or one explicit
// goal rule — and rewrites it into parameterized form: every constant
// occurrence in the body becomes a fresh parameter variable, appended to
// the head after the query's output variables. The head layout is then
//
//	goal(out..., params...)
//
// so answers project onto the leading nout columns and the parameter
// positions (all trailing) become the root's "d" positions in order.
func parseQuery(src string) (*parsedQuery, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Facts) > 0 || len(prog.Rules) != 1 || prog.Rules[0].Head.Pred != ast.GoalPred {
		return nil, fmt.Errorf("mpq: expected a single query (`?- body.` or one %s rule), got %d facts and %d rules",
			ast.GoalPred, len(prog.Facts), len(prog.Rules))
	}
	q := prog.Rules[0]
	for _, t := range q.Head.Args {
		if !t.IsVar() {
			return nil, fmt.Errorf("mpq: query head argument %s is a constant; bind it in the body instead", t)
		}
	}
	pq := &parsedQuery{}
	head := ast.Atom{Pred: ast.GoalPred, Args: append([]ast.Term(nil), q.Head.Args...)}
	body := make([]ast.Atom, len(q.Body))
	for i, a := range q.Body {
		args := make([]ast.Term, len(a.Args))
		for j, t := range a.Args {
			if t.IsVar() {
				args[j] = t
				continue
			}
			v := ast.V(paramVar(len(pq.consts)))
			pq.consts = append(pq.consts, t.Const)
			args[j] = v
			head.Args = append(head.Args, v)
		}
		body[i] = ast.Atom{Pred: a.Pred, Args: args}
	}
	pq.rule = ast.Rule{Head: head, Body: body}
	pq.shape = canonicalShape(pq.rule)
	return pq, nil
}

// canonicalShape renders the rewritten rule with user variables renamed
// V1, V2, ... in first-occurrence order and every parameter as "$", so two
// queries that differ only in their constants produce identical shapes —
// the plan-cache key property.
func canonicalShape(r ast.Rule) string {
	names := make(map[string]string)
	var b strings.Builder
	writeTerm := func(t ast.Term) {
		if isParamVar(t.Var) {
			b.WriteByte('$')
			return
		}
		n, ok := names[t.Var]
		if !ok {
			n = fmt.Sprintf("V%d", len(names)+1)
			names[t.Var] = n
		}
		b.WriteString(n)
	}
	writeAtom := func(a ast.Atom) {
		b.WriteString(a.Pred)
		for j, t := range a.Args {
			if j == 0 {
				b.WriteByte('(')
			} else {
				b.WriteByte(',')
			}
			writeTerm(t)
		}
		if len(a.Args) > 0 {
			b.WriteByte(')')
		}
	}
	writeAtom(r.Head)
	b.WriteString(" :- ")
	for i, a := range r.Body {
		if i > 0 {
			b.WriteByte(',')
		}
		writeAtom(a)
	}
	return b.String()
}

// Prepare compiles query — a `?- body.` query (or one explicit goal rule)
// evaluated against the System's loaded rules and facts, replacing any
// query rules the program itself defines — into a PreparedQuery. Options
// select the sideways-information-passing strategy and batching; only the
// message-passing engine supports preparation. The graph build, adornment,
// and index warming all happen here, once; see PreparedQuery for the
// re-evaluation contract.
func (s *System) Prepare(query string, opts ...Option) (*PreparedQuery, error) {
	cfg := config{engine: MessagePassing}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.engine != MessagePassing {
		return nil, fmt.Errorf("mpq: Prepare supports only the message-passing engine")
	}
	q, err := parseQuery(query)
	if err != nil {
		return nil, err
	}
	return s.prepare(q, &cfg)
}

// prepare builds the plan for an already-parsed query.
func (s *System) prepare(q *parsedQuery, cfg *config) (*PreparedQuery, error) {
	// Snapshot the program under the lock (AddFact appends concurrently):
	// the prepared rule replaces any query rules the program defines.
	s.mu.Lock()
	prog := &ast.Program{Facts: s.Program.Facts}
	for _, r := range s.Program.Rules {
		if r.Head.Pred != ast.GoalPred {
			prog.Rules = append(prog.Rules, r)
		}
	}
	s.mu.Unlock()
	prog.Rules = append(prog.Rules, q.rule)
	if err := prog.Validate(true); err != nil {
		return nil, err
	}
	arity := len(q.rule.Head.Args)
	nout := arity - len(q.consts)
	rootAd := make(adorn.Adornment, arity)
	for i := range rootAd {
		if i < nout {
			rootAd[i] = adorn.Free
		} else {
			rootAd[i] = adorn.Dynamic
		}
	}
	g, choice, err := s.buildGraph(prog, rootAd, cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	plan := engine.NewPlan(g, s.DB) // warms every index the graph probes, once
	s.mu.Unlock()
	pq := &PreparedQuery{sys: s, plan: plan, strategy: normStrategy(cfg.strategyName),
		shape: q.shape, defaults: q.consts, nout: nout, batch: cfg.batch,
		partitions: cfg.partitions, edbDelay: cfg.edbDelay, stats: cfg.stats,
		choice: choice, fingerprint: rgg.PlanFingerprint(g)}
	if choice != nil {
		pq.statsEpoch.Store(choice.StatsEpoch)
	}
	return pq, nil
}

// NumParams reports how many constants the query text contained — the
// number of arguments Eval and Answers accept.
func (pq *PreparedQuery) NumParams() int { return len(pq.defaults) }

// Shape returns the canonical query shape this plan was compiled for (the
// plan-cache key, minus the strategy).
func (pq *PreparedQuery) Shape() string { return pq.shape }

// Graph exposes the compiled rule/goal graph for inspection.
func (pq *PreparedQuery) Graph() *rgg.Graph { return pq.plan.Graph() }

// CacheKey returns the System plan-cache key this plan is stored under:
// strategy, partition count, simulated-latency setting, and canonical
// shape, NUL-separated. Two queries with equal CacheKeys evaluate through
// the same compiled plan, so serving-layer result caches can key on
// (CacheKey, bound constants, System.EDBVersion) and never alias distinct
// plans. For auto plans the strategy segment records the planner's actual
// decision and its statistics epoch ("auto:cost@42"), so a drift
// re-optimization that changes the plan also changes the key — cached
// results can never be replayed against a plan they were not computed by.
func (pq *PreparedQuery) CacheKey() string {
	strategy := pq.strategy
	if pq.choice != nil {
		strategy = fmt.Sprintf("%s:%s@%d", AutoStrategy, pq.choice.Strategy, pq.statsEpoch.Load())
	}
	return planKey(strategy, pq.partitions, pq.edbDelay, pq.shape)
}

// planKey builds the plan-cache key. It includes the partition count (a
// plan's pooled scratch is built for one worker-shard wiring, see
// PreparedQuery.partitions) and the WithEDBDelay setting (baked into the
// plan's run options), so configs differing in either never share a plan.
func planKey(strategy string, partitions int, delay time.Duration, shape string) string {
	return fmt.Sprintf("%s\x00%d\x00%d\x00%s", strategy, partitions, delay, shape)
}

// bindSyms validates the arguments and interns them in parameter order —
// which is also root "d"-position order, since parameters occupy the
// trailing head positions in occurrence order.
func (pq *PreparedQuery) bindSyms(args []string) ([]symtab.Sym, error) {
	if len(args) == 0 {
		args = pq.defaults
	}
	if len(args) != len(pq.defaults) {
		return nil, fmt.Errorf("mpq: prepared query takes %d arguments, got %d", len(pq.defaults), len(args))
	}
	if len(args) == 0 {
		return nil, nil
	}
	bind := make([]symtab.Sym, len(args))
	for i, a := range args {
		bind[i] = pq.sys.DB.Syms.Intern(a)
	}
	return bind, nil
}

// Eval evaluates the prepared plan with args bound to the query's constant
// positions in source-occurrence order; with no args the source text's own
// constants are used. Answers are byte-identical to a fresh Load+Eval of
// the equivalent query. ctx cancellation and deadline abort the run with
// the dual-taxonomy errors described at WithContext; a nil ctx means
// context.Background.
func (pq *PreparedQuery) Eval(ctx context.Context, args ...string) (*Answer, error) {
	stats := pq.stats
	if stats == nil {
		stats = &trace.Stats{}
	}
	tuples, err := pq.evalWith(ctx, args, stats, pq.batch)
	if err != nil {
		return nil, err
	}
	return &Answer{Engine: MessagePassing, Tuples: tuples, Stats: stats.Snapshot()}, nil
}

// evalWith is the collection core shared by Eval and System.Query.
func (pq *PreparedQuery) evalWith(ctx context.Context, args []string, stats *trace.Stats, batch bool) ([][]string, error) {
	bind, err := pq.bindSyms(args)
	if err != nil {
		return nil, err
	}
	res, err := pq.plan.Run(engine.Options{Stats: stats, Batch: batch, Bind: bind,
		Cancel: ctxDone(ctx), Partitions: pq.partitions, EDBDelay: pq.edbDelay})
	if err != nil {
		return nil, engineError(err, ctx)
	}
	// Project the parameter columns away (they are single-valued per run,
	// so distinctness is preserved) and render exactly like Eval.
	out := make([][]string, 0, res.Answers.Len())
	for _, row := range res.Answers.Rows() {
		t := make([]string, pq.nout)
		for i := 0; i < pq.nout; i++ {
			t[i] = pq.sys.DB.Syms.String(row[i])
		}
		out = append(out, t)
	}
	sortTuples(out)
	return out, nil
}

// Answers is Eval in iterator shape: goal tuples are yielded in derivation
// order (unsorted, like System.Answers), breaking out of the range cancels
// the run, and a non-nil error is yielded at most once, last, with a nil
// tuple.
func (pq *PreparedQuery) Answers(ctx context.Context, args ...string) iter.Seq2[[]string, error] {
	return func(yield func([]string, error) bool) {
		bind, err := pq.bindSyms(args)
		if err != nil {
			yield(nil, err)
			return
		}
		stopped := false
		_, err = pq.plan.RunStream(engine.Options{Stats: pq.stats, Batch: pq.batch, Bind: bind,
			Cancel: ctxDone(ctx), Partitions: pq.partitions, EDBDelay: pq.edbDelay},
			func(t relation.Tuple) bool {
				row := make([]string, pq.nout)
				for i := 0; i < pq.nout; i++ {
					row[i] = pq.sys.DB.Syms.String(t[i])
				}
				if !yield(row, nil) {
					stopped = true
					return false
				}
				return true
			})
		if err != nil && !stopped {
			yield(nil, engineError(err, ctx))
		}
	}
}

// normStrategy maps a strategy name onto the name resolveStrategy will
// actually use (unknown and empty both fall back to greedy), so plan-cache
// keys never alias two different graphs or split one. "auto" is its own
// name: auto plans are looked up under the requested strategy, while
// their CacheKey records the planner's decision.
func normStrategy(name string) string {
	switch name {
	case "qualtree", "leftright", "basic", "stats", AutoStrategy:
		return name
	}
	return "greedy"
}

// planCacheCap bounds the per-System plan cache. Eviction is LRU; a busy
// server re-compiles a shape only after planCacheCap distinct other shapes
// were queried since its last use.
const planCacheCap = 128

// planCache is an LRU map from (strategy, shape) to compiled plans. The
// zero value is ready to use.
type planCache struct {
	mu    sync.Mutex
	m     map[string]*list.Element
	order list.List // front = most recently used; element values are *planEntry
}

type planEntry struct {
	key string
	pq  *PreparedQuery
}

func (c *planCache) get(key string) *PreparedQuery {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*planEntry).pq
	}
	return nil
}

func (c *planCache) put(key string, pq *PreparedQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*list.Element)
	}
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).pq = pq
		c.order.MoveToFront(el)
		return
	}
	c.m[key] = c.order.PushFront(&planEntry{key: key, pq: pq})
	for len(c.m) > planCacheCap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.m, el.Value.(*planEntry).key)
	}
}

// Len reports how many compiled plans the cache holds.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// QueryPrepared resolves src — a `?- body.` query against the loaded
// program — through the System's plan cache without evaluating it: it
// returns the compiled plan, src's own constants (the arguments to pass to
// the plan's Eval or Answers), and whether the plan was reused from the
// cache (reused == true guarantees this call performed zero graph builds).
// Hits and misses are counted into WithStats's accumulator when given,
// feeding the Prometheus mpq_plan_cache_total series; the same accumulator
// is installed as the plan's Prepare-time stats sink on a miss.
//
// This is the serving-layer primitive beneath Query: resolve once, then
// stream with pq.Answers(ctx, args...). Two concurrent misses on one shape
// may both compile; the cache keeps the later plan and both are correct.
func (s *System) QueryPrepared(src string, opts ...Option) (pq *PreparedQuery, args []string, reused bool, err error) {
	cfg := config{engine: MessagePassing}
	for _, o := range opts {
		o(&cfg)
	}
	return s.queryPrepared(src, &cfg)
}

func (s *System) queryPrepared(src string, cfg *config) (*PreparedQuery, []string, bool, error) {
	if cfg.engine != MessagePassing {
		return nil, nil, false, fmt.Errorf("mpq: Query supports only the message-passing engine")
	}
	q, err := parseQuery(src)
	if err != nil {
		return nil, nil, false, err
	}
	key := planKey(normStrategy(cfg.strategyName), cfg.partitions, cfg.edbDelay, q.shape)
	if pq := s.plans.get(key); pq != nil {
		if npq := s.maybeReopt(pq, q, cfg); npq != nil {
			s.plans.put(key, npq)
			pq = npq
		}
		if cfg.stats != nil {
			cfg.stats.PlanHit()
		}
		return pq, q.consts, true, nil
	}
	if cfg.stats != nil {
		cfg.stats.PlanMiss()
	}
	pq, err := s.prepare(q, cfg)
	if err != nil {
		return nil, nil, false, err
	}
	s.plans.put(key, pq)
	return pq, q.consts, false, nil
}

// maybeReopt checks a cached auto plan for statistics drift and, when the
// EDB has grown past the configured threshold since the plan's statistics
// were read, re-runs the candidate scoring. It returns a replacement plan
// when the fresh decision differs from the cached one (strategy or any
// rule's evaluation order — counted as a PlanReopt); when the cached plan
// is still best it advances the plan's statistics epoch so the next drift
// check measures from now, and returns nil. Manual plans never re-opt.
//
// Replacement never mutates the cached plan: evaluations already running
// on it finish undisturbed, and the cache swap makes the new plan visible
// to subsequent lookups (both plans are correct; the engine's answers do
// not depend on the ordering, only its cost does).
func (s *System) maybeReopt(pq *PreparedQuery, q *parsedQuery, cfg *config) *PreparedQuery {
	if pq.choice == nil {
		return nil
	}
	th := cfg.reoptThreshold
	if th == 0 {
		th = DefaultReoptThreshold
	}
	if th < 0 {
		return nil
	}
	now, epoch := s.DB.Version(), pq.statsEpoch.Load()
	if now <= epoch {
		return nil
	}
	base := epoch
	if base < reoptMinEpoch {
		base = reoptMinEpoch
	}
	if float64(now-epoch)/float64(base) < th {
		return nil
	}
	npq, err := s.prepare(q, cfg)
	if err != nil {
		return nil // keep serving the cached plan
	}
	if npq.choice != nil && npq.choice.Strategy == pq.choice.Strategy && npq.fingerprint == pq.fingerprint {
		pq.statsEpoch.Store(npq.statsEpoch.Load())
		return nil
	}
	if cfg.stats != nil {
		cfg.stats.PlanReopt()
	}
	return npq
}

// Query evaluates src — a `?- body.` query against the loaded program —
// through the System's plan cache: the first evaluation of a query shape
// compiles and caches a PreparedQuery (a plan-cache miss); later queries
// differing only in constants reuse it (a hit), performing zero graph
// builds. Answer.Reused reports which happened; hits and misses are also
// counted in the returned Answer.Stats (and in WithStats's accumulator,
// feeding the Prometheus mpq_plan_cache_total series).
//
// ctx governs cancellation as in WithContext (nil means background);
// WithStrategy selects the graph and keys the cache alongside the shape.
func (s *System) Query(ctx context.Context, src string, opts ...Option) (*Answer, error) {
	cfg := config{engine: MessagePassing}
	for _, o := range opts {
		o(&cfg)
	}
	stats := cfg.stats
	if stats == nil {
		stats = &trace.Stats{}
		cfg.stats = stats
	}
	pq, args, reused, err := s.queryPrepared(src, &cfg)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		cfg.ctx = ctx
	}
	ectx, cancel := cfg.evalContext()
	defer cancel()
	tuples, err := pq.evalWith(ectx, args, stats, cfg.batch)
	if err != nil {
		return nil, err
	}
	return &Answer{Engine: MessagePassing, Tuples: tuples, Stats: stats.Snapshot(), Reused: reused}, nil
}
