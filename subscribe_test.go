package mpq

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// subNext calls sub.Next with a hang guard: subscriptions block forever by
// design, so a test that expects rows must not wait on a broken wake-up.
func subNext(t *testing.T, sub *Subscription) [][]string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rows, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return rows
}

func TestSubscriptionDeliversOnlyNewAnswers(t *testing.T) {
	s := MustLoad(`
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		goal(Y) :- path(a, Y).
	`)
	pq, err := s.Prepare(`?- path(a, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := pq.Subscription()
	if err != nil {
		t.Fatal(err)
	}
	got := subNext(t, sub)
	want, err := pq.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Tuples) {
		t.Fatalf("initial round = %v, want %v", got, want.Tuples)
	}

	s.AddFact("edge", "c", "d")
	delta := subNext(t, sub)
	if !reflect.DeepEqual(delta, [][]string{{"d"}}) {
		t.Fatalf("delta round = %v, want [[d]]", delta)
	}

	// A mutation on a predicate the plan never reads must not produce a
	// round; the next relevant fact's delta comes through alone.
	s.AddFact("unrelated", "z")
	s.AddFact("edge", "d", "e")
	delta = subNext(t, sub)
	if !reflect.DeepEqual(delta, [][]string{{"e"}}) {
		t.Fatalf("delta round = %v, want [[e]]", delta)
	}
}

func TestSubscriptionParameterized(t *testing.T) {
	s := MustLoad(`
		edge(a, b). edge(b, c). edge(x, y).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		goal(Y) :- path(a, Y).
	`)
	pq, err := s.Prepare(`?- path(a, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := pq.Subscription("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := subNext(t, sub); !reflect.DeepEqual(got, [][]string{{"y"}}) {
		t.Fatalf("initial round = %v, want [[y]]", got)
	}
	s.AddFact("edge", "y", "z")
	if got := subNext(t, sub); !reflect.DeepEqual(got, [][]string{{"z"}}) {
		t.Fatalf("delta round = %v, want [[z]]", got)
	}
}

// TestSubscriptionProperty drives random insertion sequences and checks,
// for every strategy x partition combination, that the accumulated
// subscription output is byte-identical to a from-scratch evaluation of
// the grown database after every delta, with no tuple delivered twice.
func TestSubscriptionProperty(t *testing.T) {
	for _, strat := range []string{"greedy", "leftright"} {
		for _, parts := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/p%d", strat, parts), func(t *testing.T) {
				rng := rand.New(rand.NewSource(11))
				s := MustLoad(`
					edge(n0, n1).
					path(X, Y) :- edge(X, Y).
					path(X, Y) :- path(X, U), edge(U, Y).
					goal(X, Y) :- path(X, Y).
				`)
				opts := []Option{WithStrategy(strat)}
				if parts > 1 {
					opts = append(opts, WithPartitions(parts))
				}
				pq, err := s.Prepare(`?- path(X, Y).`, opts...)
				if err != nil {
					t.Fatal(err)
				}
				sub, err := pq.Subscription()
				if err != nil {
					t.Fatal(err)
				}
				delivered := make(map[string]bool)
				accum := func(rows [][]string) {
					for _, r := range rows {
						k := fmt.Sprint(r)
						if delivered[k] {
							t.Errorf("tuple %v delivered twice", r)
						}
						delivered[k] = true
					}
				}
				accum(subNext(t, sub))
				for round := 0; round < 6; round++ {
					grew := false
					for k := rng.Intn(3) + 1; k > 0; k-- {
						a := fmt.Sprintf("n%d", rng.Intn(8))
						b := fmt.Sprintf("n%d", rng.Intn(8))
						grew = s.AddFact("edge", a, b) || grew
					}
					if grew {
						// The delta may be empty (edge between already
						// connected nodes): only wait when answers changed.
						fresh, err := pq.Eval(nil)
						if err != nil {
							t.Fatal(err)
						}
						if len(fresh.Tuples) > len(delivered) {
							accum(subNext(t, sub))
						}
						if len(delivered) != len(fresh.Tuples) {
							t.Fatalf("round %d: delivered %d tuples, fresh eval has %d",
								round, len(delivered), len(fresh.Tuples))
						}
						for _, r := range fresh.Tuples {
							if !delivered[fmt.Sprint(r)] {
								t.Errorf("round %d: fresh tuple %v never delivered", round, r)
							}
						}
					}
				}
			})
		}
	}
}

func TestSubscribeIterator(t *testing.T) {
	s := MustLoad(`
		edge(a, b).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		goal(Y) :- path(a, Y).
	`)
	pq, err := s.Prepare(`?- path(a, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type ev struct {
		row []string
		err error
	}
	events := make(chan ev)
	go func() {
		for row, err := range pq.Subscribe(ctx) {
			events <- ev{row, err}
		}
		close(events)
	}()
	expect := func(want string) {
		t.Helper()
		select {
		case e := <-events:
			if e.err != nil {
				t.Fatalf("subscribe error: %v", e.err)
			}
			if len(e.row) != 1 || e.row[0] != want {
				t.Fatalf("subscribe yielded %v, want [%s]", e.row, want)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for %s", want)
		}
	}
	expect("b")
	s.AddFact("edge", "b", "c")
	expect("c")
	s.AddFact("edge", "c", "d")
	expect("d")
	cancel()
	select {
	case e, ok := <-events:
		if ok && e.err == nil {
			t.Fatalf("after cancel, got row %v, want terminal error", e.row)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for terminal error")
	}
}

// TestAddFactWakeOrdering pins the satellite fix: AddFact publishes the
// version bump BEFORE waking subscribers, so a subscriber woken by a
// mutation always observes EDBVersion >= the version that mutation
// produced (a wake-before-bump would let it go back to sleep and miss the
// change). Run with -race: the writer goroutine hammers AddFact while the
// subscription drains deltas.
func TestAddFactWakeOrdering(t *testing.T) {
	s := MustLoad(`
		edge(n0, n1).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		goal(Y) :- path(n0, Y).
	`)
	pq, err := s.Prepare(`?- path(n0, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := pq.Subscription()
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(map[string]bool)
	for _, r := range subNext(t, sub) {
		delivered[r[0]] = true
	}
	const n = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < n; i++ {
			s.AddFact("edge", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
			if i%5 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Every vertex n1..nN becomes reachable; if any wake-up were lost the
	// subscription would block with answers still undelivered.
	for len(delivered) < n {
		for _, r := range subNext(t, sub) {
			if delivered[r[0]] {
				t.Errorf("tuple %v delivered twice", r)
			}
			delivered[r[0]] = true
		}
	}
	wg.Wait()
	if len(delivered) != n {
		t.Fatalf("delivered %d answers, want %d", len(delivered), n)
	}
}
