// Benchmarks E1–E11 mirror the experiment suite in DESIGN.md / cmd/bench:
// one benchmark per paper figure or claim, so `go test -bench=. -benchmem`
// regenerates the performance side of EXPERIMENTS.md. Micro-benchmarks for
// the substrates (parser, relations, mailboxes) follow.
package mpq

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/adorn"
	"repro/internal/bottomup"
	"repro/internal/edb"
	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/msg"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rgg"
	"repro/internal/symtab"
	"repro/internal/transport"
	"repro/internal/workload"
)

const p1bench = `
	goal(Z) :- p(n0, Z).
	p(X, Y) :- p(X, U), q(U, V), p(V, Y).
	p(X, Y) :- r(X, Y).
	r(n0, n1). q(n1, n1).
`

// BenchmarkE1GraphConstruction measures information-passing rule/goal graph
// construction for the paper's P1 (Fig 1).
func BenchmarkE1GraphConstruction(b *testing.B) {
	prog := parser.MustParse(p1bench)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rgg.Build(prog, rgg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2P1Evaluation runs the message engine on Example 2.1 data.
func BenchmarkE2P1Evaluation(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	prog := workload.Program(workload.P1Rules, workload.P1Data(32, 0.7, rng))
	g, err := rgg.Build(prog, rgg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := edb.FromProgram(prog)
		if _, err := engine.Run(g, db, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3TerminationProtocol exercises the Fig 2 protocol over a large
// strong component (4 mutually recursive predicates on a cycle graph).
func BenchmarkE3TerminationProtocol(b *testing.B) {
	src := "goal(Y) :- p0(n0, Y).\np0(X, Y) :- e(X, Y).\n"
	for i := 0; i < 4; i++ {
		src += fmt.Sprintf("p%d(X, Y) :- p%d(X, U), e(U, Y).\n", i, (i+1)%4)
	}
	prog := parser.MustParse(src)
	prog.Facts = append(prog.Facts, workload.Cycle("e", 16)...)
	g, err := rgg.Build(prog, rgg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := edb.FromProgram(prog)
		if _, err := engine.Run(g, db, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4GYO measures the Graham reduction on the paper's R2 and R3.
func BenchmarkE4GYO(b *testing.B) {
	progR2 := parser.MustParse(`p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).`)
	progR3 := parser.MustParse(`p(X, Z) :- a(X, Y, V), b(Y, W, U), c(V, W, T), d(T), e(U, Z).`)
	ad := adorn.Adornment{adorn.Dynamic, adorn.Free}
	h2 := adorn.EvaluationHypergraph(progR2.Rules[0], ad)
	h3 := adorn.EvaluationHypergraph(progR3.Rules[0], ad)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !h2.Reduce().Acyclic {
			b.Fatal("R2 must be acyclic")
		}
		if h3.Reduce().Acyclic {
			b.Fatal("R3 must be cyclic")
		}
	}
}

// BenchmarkE5QualTreeSIP builds the Theorem 4.1 strategy for R2.
func BenchmarkE5QualTreeSIP(b *testing.B) {
	prog := parser.MustParse(`p(X, Z) :- a(X, Y, V), b(Y, U), c(V, T), d(T), e(U, Z).`)
	ad := adorn.Adornment{adorn.Dynamic, adorn.Free}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, ok := adorn.QualTreeSIP(prog.Rules[0], ad)
		if !ok || s.IsGreedy() != -1 {
			b.Fatal("Theorem 4.1 violated")
		}
	}
}

// BenchmarkE6Composition measures Theorem 4.2 qual-tree composition
// (Fig 5's shape).
func BenchmarkE6Composition(b *testing.B) {
	hu := hypergraph.Evaluation("r", []string{"X"}, []hypergraph.Edge{
		hypergraph.NewEdge("q", "X", "Y"),
		hypergraph.NewEdge("s", "Y"),
		hypergraph.NewEdge("p", "Y", "Z"),
	})
	tu, _ := hu.QualTree(0)
	hw := hypergraph.Evaluation("p", []string{"Y"}, []hypergraph.Edge{
		hypergraph.NewEdge("a", "Y", "W"),
		hypergraph.NewEdge("b", "W", "Z"),
	})
	tw, _ := hw.QualTree(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, tc, err := hypergraph.Compose(tu, 3, tw)
		if err != nil || tc.Check() != "" {
			b.Fatal("Theorem 4.2 violated")
		}
	}
}

// BenchmarkE7 compares §1.1 brute force against semi-naive and the engine
// on a 10-constant chain.
func BenchmarkE7BruteForce(b *testing.B) {
	prog := workload.Program(workload.TCRules, workload.Chain("edge", 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bottomup.BruteForce(prog, edb.FromProgram(prog))
	}
}

func BenchmarkE7SemiNaive(b *testing.B) {
	prog := workload.Program(workload.TCRules, workload.Chain("edge", 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bottomup.SemiNaive(prog, edb.FromProgram(prog))
	}
}

func BenchmarkE7Engine(b *testing.B) {
	prog := workload.Program(workload.TCRules, workload.Chain("edge", 10))
	g, _ := rgg.Build(prog, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8 evaluates the §4.3 monotone (R2) and cyclic (R3) shapes.
func BenchmarkE8MonotoneR2(b *testing.B) {
	r2, _ := workload.MonotonePrograms(20, 6)
	g, _ := rgg.Build(r2, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(r2), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8CyclicR3(b *testing.B) {
	_, r3 := workload.MonotonePrograms(20, 6)
	g, _ := rgg.Build(r3, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(r3), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9 measures the §1.2 relevance restriction: a point query on a
// 16-component graph, engine vs full bottom-up.
func BenchmarkE9RestrictionEngine(b *testing.B) {
	prog := workload.Program(workload.TCRules, workload.Components("edge", 16, 16))
	g, _ := rgg.Build(prog, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9RestrictionSemiNaive(b *testing.B) {
	prog := workload.Program(workload.TCRules, workload.Components("edge", 16, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bottomup.SemiNaive(prog, edb.FromProgram(prog))
	}
}

// BenchmarkE10 exercises nonlinear recursion (divide-and-conquer transitive
// closure).
func BenchmarkE10Nonlinear(b *testing.B) {
	prog := workload.Program(workload.NonlinearTCRules, workload.Chain("edge", 24))
	g, _ := rgg.Build(prog, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11 compares in-process evaluation with a 2-site TCP cluster on
// the same query.
func BenchmarkE11InProcess(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	prog := workload.Program(workload.P1Rules, workload.P1Data(16, 0.7, rng))
	g, _ := rgg.Build(prog, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11TCPTwoSites(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	prog := workload.Program(workload.P1Rules, workload.P1Data(16, 0.7, rng))
	g, _ := rgg.Build(prog, rgg.Options{})
	const sites = 2
	hosts := engine.Partition(g, sites)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addrs := make([]string, sites)
		for j := range addrs {
			addrs[j] = "127.0.0.1:0"
		}
		locals := make([]*transport.Local, sites)
		nets := make([]*transport.TCP, sites)
		for j := 0; j < sites; j++ {
			locals[j] = transport.NewLocal(len(g.Nodes) + 1)
			n, err := transport.NewTCP(j, addrs, hosts, locals[j])
			if err != nil {
				b.Fatal(err)
			}
			addrs[j] = n.Addr()
			nets[j] = n
		}
		var wg sync.WaitGroup
		for j := 0; j < sites; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				db := edb.FromProgram(prog)
				if _, err := engine.RunSites(g, db, nets[j], locals[j], hosts, j, engine.Options{}); err != nil {
					b.Error(err)
				}
			}(j)
		}
		wg.Wait()
		for _, n := range nets {
			n.Close()
		}
	}
}

// BenchmarkA1 ablates the information passing strategy on the scrambled
// ancestor query of experiment A1.
func benchmarkStrategy(b *testing.B, s rgg.Strategy) {
	prog := workload.Program(`
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(U, Y), anc(X, U).
		goal(A) :- anc(n0, A).
	`, workload.Components("par", 4, 32))
	g, err := rgg.Build(prog, rgg.Options{Strategy: s})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA1Greedy(b *testing.B)      { benchmarkStrategy(b, rgg.GreedyStrategy) }
func BenchmarkA1QualTree(b *testing.B)    { benchmarkStrategy(b, rgg.QualTreeStrategy) }
func BenchmarkA1LeftToRight(b *testing.B) { benchmarkStrategy(b, rgg.LeftToRightStrategy) }
func BenchmarkA1Basic(b *testing.B)       { benchmarkStrategy(b, rgg.BasicStrategy) }

// BenchmarkA2 ablates footnote 2's packaged tuple requests on the
// cross-product workload of experiment A2.
func benchmarkBatching(b *testing.B, batch bool) {
	src := ""
	for i := 1; i <= 25; i++ {
		src += fmt.Sprintf("a(x%d). b(y%d). g(x%d, y%d, z%d).\n", i, i, i, i, i)
	}
	src += `
		r(Z) :- a(X), b(Y), g(X, Y, Z).
		goal(Z) :- r(Z).
	`
	prog := parser.MustParse(src)
	g, err := rgg.Build(prog, rgg.Options{Strategy: rgg.LeftToRightStrategy})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{Batch: batch}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA2Individual(b *testing.B) { benchmarkBatching(b, false) }
func BenchmarkA2Packaged(b *testing.B)   { benchmarkBatching(b, true) }

// ---- substrate micro-benchmarks -------------------------------------------

func BenchmarkParser(b *testing.B) {
	src := p1bench
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelationInsert(b *testing.B) {
	b.ReportAllocs()
	r := relation.New(2)
	for i := 0; i < b.N; i++ {
		r.Insert(relation.Tuple{symtab.Sym(i % 4096), symtab.Sym(i % 977)})
	}
}

func BenchmarkRelationJoin(b *testing.B) {
	left := relation.New(2)
	right := relation.New(2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		left.Insert(relation.Tuple{symtab.Sym(rng.Intn(500) + 1), symtab.Sym(rng.Intn(500) + 1)})
		right.Insert(relation.Tuple{symtab.Sym(rng.Intn(500) + 1), symtab.Sym(rng.Intn(500) + 1)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relation.Join(left, right, []relation.EqPair{{L: 1, R: 0}})
	}
}

func BenchmarkRelationSemiJoin(b *testing.B) {
	left := relation.New(2)
	right := relation.New(1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		left.Insert(relation.Tuple{symtab.Sym(rng.Intn(500) + 1), symtab.Sym(rng.Intn(500) + 1)})
		right.Insert(relation.Tuple{symtab.Sym(rng.Intn(500) + 1)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relation.SemiJoin(left, right, []relation.EqPair{{L: 0, R: 0}})
	}
}

// BenchmarkRelationInsertDup measures duplicate rejection — the hot case
// for set-semantics evaluation. The tentpole claim: 0 allocs/op.
func BenchmarkRelationInsertDup(b *testing.B) {
	r := relation.New(3)
	for i := 0; i < 4096; i++ {
		r.Insert(relation.Tuple{symtab.Sym(i + 1), symtab.Sym(i%977 + 1), symtab.Sym(i%53 + 1)})
	}
	probe := append(relation.Tuple{}, r.Rows()[100]...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Insert(probe) {
			b.Fatal("probe was not a duplicate")
		}
	}
}

// BenchmarkRelationJoin2Col measures a 2-column equijoin: one composite
// index probe per tuple of the larger side, no post-filter scan.
func BenchmarkRelationJoin2Col(b *testing.B) {
	left := relation.New(3)
	right := relation.New(3)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		left.Insert(relation.Tuple{symtab.Sym(rng.Intn(50) + 1), symtab.Sym(rng.Intn(50) + 1), symtab.Sym(rng.Intn(50) + 1)})
		right.Insert(relation.Tuple{symtab.Sym(rng.Intn(50) + 1), symtab.Sym(rng.Intn(50) + 1), symtab.Sym(rng.Intn(50) + 1)})
	}
	on := []relation.EqPair{{L: 1, R: 0}, {L: 2, R: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relation.Join(left, right, on)
	}
}

// BenchmarkE7EngineBatched / BenchmarkE11InProcessBatched are the original
// experiment instances with vectorized delivery; their wavefronts are
// narrow (a chain discovers one tuple at a time), so they bound batching
// overhead rather than showcase it.
func BenchmarkE7EngineBatched(b *testing.B) {
	prog := workload.Program(workload.TCRules, workload.Chain("edge", 10))
	g, _ := rgg.Build(prog, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{Batch: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11InProcessBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	prog := workload.Program(workload.P1Rules, workload.P1Data(16, 0.7, rng))
	g, _ := rgg.Build(prog, rgg.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{Batch: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchingWide run the E7 query family (TC reachability) on a
// wide-wavefront random graph, where set-at-a-time delivery collapses the
// message count (see TestBatchingMessageDrop for the ratio assertion).
func BenchmarkBatchingWideOff(b *testing.B) {
	benchWide(b, false)
}

func BenchmarkBatchingWideOn(b *testing.B) {
	benchWide(b, true)
}

func benchWide(b *testing.B, batch bool) {
	prog := workload.Program(workload.TCRules, workload.Random("edge", 64, 512, rand.New(rand.NewSource(11))))
	g, _ := rgg.Build(prog, rgg.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(g, edb.FromProgram(prog), engine.Options{Batch: batch}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMailbox(b *testing.B) {
	mb := transport.NewMailbox()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mb.Put(msg.Message{Kind: msg.Tuple, N: i})
		if _, ok := mb.Get(); !ok {
			b.Fatal("closed")
		}
	}
}

func BenchmarkFacadeEval(b *testing.B) {
	sys := MustLoad(`
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		goal(Y) :- path(a, Y).
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Eval(); err != nil {
			b.Fatal(err)
		}
	}
}
