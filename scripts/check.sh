#!/bin/sh
# Tier-1 check: build, vet, and the full test suite under the race
# detector. `make check` runs this. Pass -short through for a quick pass:
#   ./scripts/check.sh -short
# `./scripts/check.sh chaos` (or `make chaos`) runs the failure-handling
# suite — fault injection, heartbeats, kills, deadlines, the chaos soak —
# twice under the race detector, to shake out schedules that only hang or
# race on the second run.
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
if [ "${1:-}" = "chaos" ]; then
	shift
	go test -race -count=2 \
		-run 'Chaos|FaultNet|ParseChaos|Deadline|Cancel|Panic|Heartbeat|PeerDown|KilledPeer|Reconnect|SiteKill|ConnectionLoss' \
		"$@" ./internal/engine/ ./internal/transport/
	exit 0
fi
go test -race "$@" ./...
