#!/bin/sh
# Tier-1 check: build, vet, docs, and the full test suite under the race
# detector. `make check` runs this. Pass -short through for a quick pass:
#   ./scripts/check.sh -short
# `./scripts/check.sh chaos` (or `make chaos`) runs the failure-handling
# suite — fault injection, heartbeats, kills, deadlines, the chaos soak —
# twice under the race detector, to shake out schedules that only hang or
# race on the second run.
# `./scripts/check.sh docs` (or `make docs`) runs only the documentation
# gate: intra-repo markdown links must resolve, and `go vet` must be clean.
# `./scripts/check.sh gate` (or `make gate`) runs the perf-regression
# release gate: cmd/bench re-measures the headline ratios of the committed
# BENCH_4/5/6/8/9.json records on this tree — including the disk-store
# cache-effectiveness headline — and exits nonzero if any falls past its
# noise floor (thresholds: EXPERIMENTS.md). Self-test with
# MPQ_GATE_HANDICAP=2ms, which simulates a slowed build — the gate must
# then fail.
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
# Docs gate: every relative markdown link in the repo's own documentation
# must point at a real file. SNIPPETS/PAPERS/ISSUE quote external material
# whose links are not ours to keep alive, so they are not listed.
go run ./cmd/mdlinkcheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md doc/*.md
# API gate: the exported surface of package mpq must match the checked-in
# snapshot. Intentional changes: go run ./cmd/apisnap > api/mpq.txt
go run ./cmd/apisnap -check api/mpq.txt
if [ "${1:-}" = "docs" ]; then
	exit 0
fi
if [ "${1:-}" = "gate" ]; then
	go run ./cmd/bench -gate
	exit 0
fi
if [ "${1:-}" = "chaos" ]; then
	shift
	go test -race -count=2 \
		-run 'Chaos|FaultNet|ParseChaos|Deadline|Cancel|Panic|Heartbeat|PeerDown|KilledPeer|Reconnect|SiteKill|ConnectionLoss' \
		"$@" ./internal/engine/ ./internal/transport/
	exit 0
fi
go test -race "$@" ./...
# Partitioned evaluation exercises real parallelism: re-run the engine
# suite pinned to one CPU and spread over four, so worker-shard schedules
# that only misbehave at a particular GOMAXPROCS still surface.
go test -race -cpu=1,4 "$@" ./internal/engine/
# Storage-backend sweep: the engine suite again, with every edb.New()
# backed by a temporary disk segment store. Byte-identical behavior across
# backends is the Storage contract (doc/STORAGE.md); this catches any
# engine-level assumption that the EDB lives in relation.Relation memory.
MPQ_STORE=disk go test -race "$@" ./internal/engine/ ./internal/edb/
# Subscription soak: live subscriptions racing wire mutations (and the
# mutation/wake ordering that keeps result caches fresh) re-run twice so
# one-in-two schedules still surface; see doc/SUBSCRIPTIONS.md.
go test -race -count=2 -run 'TestServeSubscribe|TestServeFact|TestSubscription|TestSubscribe|TestAddFactWake' \
	"$@" ./internal/serve/ .
