package mpq

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

const tcProgram = `
	edge(a, b). edge(b, c). edge(c, d). edge(x, y).
	path(X, Y) :- edge(X, Y).
	path(X, Y) :- path(X, U), edge(U, Y).
	goal(Y) :- path(a, Y).
`

func TestLoadAndEvalDefault(t *testing.T) {
	sys, err := Load(tcProgram)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Eval()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"b"}, {"c"}, {"d"}}
	if !reflect.DeepEqual(ans.Tuples, want) {
		t.Errorf("Tuples = %v, want %v", ans.Tuples, want)
	}
	if ans.Engine != MessagePassing {
		t.Errorf("Engine = %v", ans.Engine)
	}
	if ans.Stats.Messages() == 0 {
		t.Error("no messages recorded")
	}
}

func TestAllEnginesAgree(t *testing.T) {
	engines := []Engine{MessagePassing, SemiNaive, Naive, MagicSets, BruteForce}
	var baseline [][]string
	for _, e := range engines {
		sys := MustLoad(tcProgram)
		ans, err := sys.Eval(WithEngine(e))
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if baseline == nil {
			baseline = ans.Tuples
			continue
		}
		if !reflect.DeepEqual(ans.Tuples, baseline) {
			t.Errorf("%v answers %v != %v", e, ans.Tuples, baseline)
		}
	}
}

func TestStrategies(t *testing.T) {
	for _, s := range []string{"greedy", "qualtree", "leftright"} {
		sys := MustLoad(tcProgram)
		ans, err := sys.Eval(WithStrategy(s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(ans.Tuples) != 3 {
			t.Errorf("%s: %d answers", s, len(ans.Tuples))
		}
	}
}

func TestAddFact(t *testing.T) {
	sys := MustLoad(tcProgram)
	if !sys.AddFact("edge", "d", "e1") {
		t.Error("AddFact reported duplicate for new fact")
	}
	if sys.AddFact("edge", "d", "e1") {
		t.Error("AddFact reported new for duplicate")
	}
	ans, err := sys.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Has("e1") {
		t.Errorf("added fact not reachable: %v", ans.Tuples)
	}
}

func TestLoadData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.csv")
	if err := os.WriteFile(path, []byte("d,e1\ne1,f1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys := MustLoad(tcProgram)
	n, err := sys.LoadData("edge", path)
	if err != nil || n != 2 {
		t.Fatalf("LoadData = %d, %v", n, err)
	}
	// Every engine must see the loaded facts (in particular MagicSets,
	// which rebuilds its database from the program).
	for _, e := range []Engine{MessagePassing, SemiNaive, MagicSets} {
		ans, err := sys.Eval(WithEngine(e))
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if !ans.Has("f1") {
			t.Errorf("%v: loaded fact unreachable: %v", e, ans.Tuples)
		}
	}
}

func TestBatchingOption(t *testing.T) {
	sys := MustLoad(tcProgram)
	plain, err := sys.Eval()
	if err != nil {
		t.Fatal(err)
	}
	batched, err := sys.Eval(WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Tuples, batched.Tuples) {
		t.Errorf("batched answers differ: %v vs %v", batched.Tuples, plain.Tuples)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`edge(a, b).`,                       // no query
		`edge(X, b). goal(Y) :- edge(a,Y).`, // nonground fact
		`p(X) :- q(`,                        // syntax
	}
	for _, src := range cases {
		if _, err := Load(src); err == nil {
			t.Errorf("Load(%q) succeeded", src)
		}
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.dl")
	if err := os.WriteFile(path, []byte(tcProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Eval()
	if err != nil || len(ans.Tuples) != 3 {
		t.Errorf("LoadFile eval: %v, %v", ans, err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.dl")); err == nil {
		t.Error("LoadFile of missing file succeeded")
	}
}

func TestGraphInspection(t *testing.T) {
	sys := MustLoad(tcProgram)
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 || g.Text() == "" || g.DOT() == "" {
		t.Error("graph inspection empty")
	}
}

func TestWithStats(t *testing.T) {
	var st trace.Stats
	sys := MustLoad(tcProgram)
	if _, err := sys.Eval(WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Eval(WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	two := st.Snapshot()
	if two.Messages() == 0 {
		t.Error("accumulator empty")
	}
}

func TestParseEngine(t *testing.T) {
	for _, e := range []Engine{MessagePassing, SemiNaive, Naive, MagicSets, BruteForce} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("nope"); err == nil {
		t.Error("ParseEngine accepted junk")
	}
	if Engine(99).String() == "" {
		t.Error("unknown engine String empty")
	}
}

func TestExplain(t *testing.T) {
	sys := MustLoad(tcProgram)
	p, ok := sys.Explain("path", "a", "d")
	if !ok {
		t.Fatal("path(a,d) not provable")
	}
	s := p.String()
	if !strings.Contains(s, "path(a, d)") || !strings.Contains(s, "[EDB fact]") {
		t.Errorf("proof malformed:\n%s", s)
	}
	if _, ok := sys.Explain("path", "d", "a"); ok {
		t.Error("proved a false fact")
	}
	if _, ok := sys.Explain("edge", "a", "b"); !ok {
		t.Error("EDB fact not explainable")
	}
}

func TestEvalStream(t *testing.T) {
	sys := MustLoad(tcProgram)
	var got [][]string
	_, err := sys.EvalStream(func(t []string) bool {
		got = append(got, append([]string(nil), t...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("streamed %d answers, want 3: %v", len(got), got)
	}
}

func TestEvalStreamCancel(t *testing.T) {
	// A large chain; cancel after the first answer. The evaluation must
	// stop promptly and cleanly.
	src := ""
	for i := 0; i < 200; i++ {
		src += "edge(n" + fmt.Sprint(i) + ", n" + fmt.Sprint(i+1) + ").\n"
	}
	src += `
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		goal(Y) :- path(n0, Y).
	`
	sys := MustLoad(src)
	count := 0
	st, err := sys.EvalStream(func(t []string) bool {
		count++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("yield called %d times after cancel", count)
	}
	if st.Stored >= 200 {
		t.Errorf("cancellation did not stop the engine early: %d tuples stored", st.Stored)
	}
}

func TestEvalStreamRejectsOtherEngines(t *testing.T) {
	sys := MustLoad(tcProgram)
	if _, err := sys.EvalStream(func([]string) bool { return true }, WithEngine(SemiNaive)); err == nil {
		t.Error("EvalStream accepted a bottom-up engine")
	}
}

func TestConcurrentEval(t *testing.T) {
	sys := MustLoad(tcProgram)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ans, err := sys.Eval()
			if err != nil {
				errs <- err
				return
			}
			if len(ans.Tuples) != 3 {
				errs <- fmt.Errorf("got %d answers", len(ans.Tuples))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHas(t *testing.T) {
	a := &Answer{Tuples: [][]string{{"x", "y"}, {"z"}}}
	if !a.Has("x", "y") || !a.Has("z") || a.Has("x") || a.Has("y", "x") {
		t.Error("Has wrong")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLoad did not panic")
		}
	}()
	MustLoad("broken(")
}

func ExampleSystem_Eval() {
	sys := MustLoad(`
		edge(a, b). edge(b, c).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		goal(Y) :- path(a, Y).
	`)
	ans, _ := sys.Eval()
	for _, t := range ans.Tuples {
		fmt.Println(t[0])
	}
	// Output:
	// b
	// c
}
