package mpq

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestProgramCorpus runs every program in testdata/programs through every
// engine and checks the answers against the expectation embedded in the
// file's header:
//
//	% expect: b c d          → exactly these tuples ("a,b" = binary tuple,
//	                           "yes" = the empty tuple, blank = no answers)
//	% expect-count: 40       → exactly this many tuples
func TestProgramCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "programs", "*.dl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs found: %v", err)
	}
	engines := []Engine{MessagePassing, SemiNaive, Naive, MagicSets, BruteForce}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			wantSet, wantCount := parseExpect(t, string(src))
			for _, e := range engines {
				sys, err := Load(string(src))
				if err != nil {
					t.Fatalf("%v: %v", e, err)
				}
				var ans *Answer
				done := make(chan error, 1)
				go func() {
					var err error
					ans, err = sys.Eval(WithEngine(e))
					done <- err
				}()
				if err := <-done; err != nil {
					t.Fatalf("%v: %v", e, err)
				}
				if wantCount >= 0 {
					if len(ans.Tuples) != wantCount {
						t.Errorf("%v: %d answers, want %d", e, len(ans.Tuples), wantCount)
					}
					continue
				}
				got := renderTuples(ans.Tuples)
				if got != wantSet {
					t.Errorf("%v: answers %q, want %q", e, got, wantSet)
				}
			}
			// The batched engine and every strategy must agree too.
			for _, opt := range []Option{WithBatching(), WithStrategy("qualtree"),
				WithStrategy("leftright"), WithStrategy("basic"), WithStrategy("stats"),
				WithStrategy("auto")} {
				sys := MustLoad(string(src))
				ans, err := sys.Eval(opt)
				if err != nil {
					t.Fatal(err)
				}
				if wantCount >= 0 {
					if len(ans.Tuples) != wantCount {
						t.Errorf("variant run: %d answers, want %d", len(ans.Tuples), wantCount)
					}
				} else if got := renderTuples(ans.Tuples); got != wantSet {
					t.Errorf("variant run: answers %q, want %q", got, wantSet)
				}
			}
		})
	}
}

// parseExpect extracts the expectation header. wantCount is -1 when an
// explicit tuple set is given instead.
func parseExpect(t *testing.T, src string) (string, int) {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "% expect-count:"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				t.Fatalf("bad expect-count: %q", line)
			}
			return "", n
		}
		if rest, ok := strings.CutPrefix(line, "% expect:"); ok {
			fields := strings.Fields(rest)
			tuples := make([][]string, 0, len(fields))
			for _, f := range fields {
				if f == "yes" {
					tuples = append(tuples, []string{})
				} else {
					tuples = append(tuples, strings.Split(f, ","))
				}
			}
			return renderTuples(tuples), -1
		}
	}
	t.Fatal("program has no % expect header")
	return "", -1
}

func renderTuples(tuples [][]string) string {
	rows := make([]string, 0, len(tuples))
	for _, t := range tuples {
		if len(t) == 0 {
			rows = append(rows, "yes")
		} else {
			rows = append(rows, strings.Join(t, ","))
		}
	}
	// Sort for set comparison.
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			if rows[j] < rows[i] {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	return fmt.Sprint(rows)
}
