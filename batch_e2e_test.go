package mpq

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/edb"
	"repro/internal/engine"
	"repro/internal/rgg"
	"repro/internal/workload"
)

// batchWorkloads are the end-to-end instances the vectorized-delivery
// experiments run: the original E7/E11 instances (narrow wavefronts — a
// chain discovers one tuple at a time, so batches degenerate to singles and
// the only requirement is "no worse"), plus wide-wavefront instances of the
// same query families, where set-at-a-time delivery must collapse message
// counts by at least minDrop.
var batchWorkloads = []struct {
	name    string
	minDrop float64 // required plain/batched message ratio; 1 = no worse
	mk      func() *ast.Program
}{
	{"E7-chain", 1, func() *ast.Program {
		return workload.Program(workload.TCRules, workload.Chain("edge", 10))
	}},
	{"E11-p1", 1, func() *ast.Program {
		return workload.Program(workload.P1Rules, workload.P1Data(16, 0.7, rand.New(rand.NewSource(11))))
	}},
	{"E7-wide", 5, func() *ast.Program {
		return workload.Program(workload.TCRules, workload.Random("edge", 64, 512, rand.New(rand.NewSource(11))))
	}},
	{"E11-wide", 5, func() *ast.Program {
		return workload.Program(workload.TCRules, workload.Grid("edge", 12, 12))
	}},
}

// TestBatchingMessageDrop pins the vectorized-delivery acceptance: with
// Options.Batch set the answer set must stay byte-identical on every
// workload, and on the wide-wavefront instances total basic messages must
// drop at least 5×.
func TestBatchingMessageDrop(t *testing.T) {
	for _, w := range batchWorkloads {
		prog := w.mk()
		g, err := rgg.Build(prog, rgg.Options{})
		if err != nil {
			t.Fatal(err)
		}
		render := func(batch bool) (string, int64) {
			db := edb.FromProgram(prog)
			res, err := engine.Run(g, db, engine.Options{Batch: batch})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, row := range res.Answers.Sorted() {
				b.WriteString(row.String(db.Syms))
				b.WriteByte('\n')
			}
			return b.String(), res.Stats.Messages()
		}
		plainAns, plainMsgs := render(false)
		batchAns, batchMsgs := render(true)
		if plainAns != batchAns {
			t.Errorf("%s: batched answers differ from unbatched", w.name)
		}
		if plainAns == "" {
			t.Errorf("%s: no answers", w.name)
		}
		ratio := float64(plainMsgs) / float64(batchMsgs)
		t.Logf("%s: messages plain=%d batched=%d (%.1fx)", w.name, plainMsgs, batchMsgs, ratio)
		if ratio < w.minDrop {
			t.Errorf("%s: message drop %.2fx, want ≥%.0fx (plain=%d batched=%d)",
				w.name, ratio, w.minDrop, plainMsgs, batchMsgs)
		}
	}
}
