GO ?= go

.PHONY: build test check check-short chaos docs gate bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: build + vet + race-enabled tests.
check:
	./scripts/check.sh

# Same gate with -short: skips the soak/stress/timeout-bound tests.
check-short:
	./scripts/check.sh -short

# Failure-handling suite only (fault injection, heartbeats, kills, the
# chaos soak), run twice under the race detector.
chaos:
	./scripts/check.sh chaos

# Documentation gate only: intra-repo markdown links resolve + go vet.
docs:
	./scripts/check.sh docs

# Perf-regression release gate: re-measure the committed BENCH_4/5/6/8/9
# headline ratios (prepared speedup, partition overlap, serving fairness,
# adaptive planning, disk-store cache effectiveness) on this tree,
# nonzero exit past the noise floor.
gate:
	./scripts/check.sh gate

bench:
	$(GO) test -bench . -benchmem -benchtime 1s .
