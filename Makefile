GO ?= go

.PHONY: build test check check-short bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: build + vet + race-enabled tests.
check:
	./scripts/check.sh

# Same gate with -short: skips the soak/stress/timeout-bound tests.
check-short:
	./scripts/check.sh -short

bench:
	$(GO) test -bench . -benchmem -benchtime 1s .
