package mpq

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandsEndToEnd builds the actual binaries and drives them the way a
// user would: mpq on a program file with a data file, rgg regenerating
// Figure 1, qualtree analyzing the paper's rules, bench in quick mode, and
// an mpqd pair cooperating over TCP.
func TestCommandsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e CLI test skipped in -short mode")
	}
	bin := t.TempDir()
	for _, cmd := range []string{"mpq", "rgg", "qualtree", "mpqd"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}

	dir := t.TempDir()
	prog := filepath.Join(dir, "q.dl")
	if err := os.WriteFile(prog, []byte(`
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- path(X, U), edge(U, Y).
		?- path(a, Y).
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	data := filepath.Join(dir, "edges.csv")
	if err := os.WriteFile(data, []byte("a,b\nb,c\nx,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("mpq", func(t *testing.T) {
		for _, engine := range []string{"message-passing", "semi-naive", "magic-sets"} {
			out, err := exec.Command(filepath.Join(bin, "mpq"),
				"-engine", engine, "-data", "edge="+data, prog).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", engine, err, out)
			}
			s := string(out)
			if !strings.Contains(s, "b") || !strings.Contains(s, "c") || strings.Contains(s, "y\n") {
				t.Errorf("%s answers wrong:\n%s", engine, s)
			}
		}
	})

	t.Run("rgg", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "rgg"), "-p1").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"--cycle-->", "leader", "p(aᶜ"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("rgg -p1 missing %q:\n%s", want, out)
			}
		}
		dot, err := exec.Command(filepath.Join(bin, "rgg"), "-p1", "-dot").CombinedOutput()
		if err != nil || !strings.Contains(string(dot), "digraph") {
			t.Errorf("rgg -dot failed: %v\n%s", err, dot)
		}
	})

	t.Run("qualtree", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "qualtree"), "-example41").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "MONOTONE FLOW") ||
			!strings.Contains(string(out), "lacks the monotone flow") {
			t.Errorf("qualtree -example41 output wrong:\n%s", out)
		}
		fig5, err := exec.Command(filepath.Join(bin, "qualtree"), "-fig5").CombinedOutput()
		if err != nil || !strings.Contains(string(fig5), "property holds") {
			t.Errorf("qualtree -fig5 failed: %v\n%s", err, fig5)
		}
	})

	t.Run("mpqd", func(t *testing.T) {
		distProg := filepath.Join(dir, "dist.dl")
		if err := os.WriteFile(distProg, []byte(`
			edge(a, b). edge(b, c).
			path(X, Y) :- edge(X, Y).
			path(X, Y) :- path(X, U), edge(U, Y).
			goal(Y) :- path(a, Y).
		`), 0o644); err != nil {
			t.Fatal(err)
		}
		addrs := "127.0.0.1:7911,127.0.0.1:7912"
		site1 := exec.Command(filepath.Join(bin, "mpqd"), "-program", distProg, "-site", "1", "-addrs", addrs)
		if err := site1.Start(); err != nil {
			t.Fatal(err)
		}
		defer site1.Process.Kill()
		out, err := exec.Command(filepath.Join(bin, "mpqd"),
			"-program", distProg, "-site", "0", "-addrs", addrs).CombinedOutput()
		if err != nil {
			t.Fatalf("driver site: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "b") || !strings.Contains(string(out), "c") {
			t.Errorf("mpqd answers wrong:\n%s", out)
		}
		site1.Wait()
	})

	t.Run("serve", func(t *testing.T) {
		servProg := filepath.Join(dir, "serve.dl")
		if err := os.WriteFile(servProg, []byte(`
			edge(a, b). edge(b, c). edge(x, y).
			path(X, Y) :- edge(X, Y).
			path(X, Y) :- path(X, U), edge(U, Y).
			goal(Y) :- path(a, Y).
		`), 0o644); err != nil {
			t.Fatal(err)
		}
		addr := "127.0.0.1:7913"
		daemon := exec.Command(filepath.Join(bin, "mpqd"), "-program", servProg, "-serve", addr)
		if err := daemon.Start(); err != nil {
			t.Fatal(err)
		}
		defer daemon.Process.Kill()

		// The daemon needs a moment to listen; retry until it accepts.
		var out []byte
		var err error
		for i := 0; i < 50; i++ {
			out, err = exec.Command(filepath.Join(bin, "mpq"),
				"-connect", addr, "?- path(a, Y).", "?- path(x, Y).").CombinedOutput()
			if err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("mpq -connect: %v\n%s", err, out)
		}
		if got := string(out); got != "b\nc\ny\n" {
			t.Errorf("mpq -connect answers = %q, want \"b\\nc\\ny\\n\"", got)
		}
	})
}
