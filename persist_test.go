package mpq

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/edb"
)

const persistProgram = `
	edge(a, b). edge(b, c). edge(c, d). edge(b, e). edge(e, f).
	path(X, Y) :- edge(X, Y).
	path(X, Y) :- path(X, U), edge(U, Y).
	goal(Y) :- path(a, Y).
`

// diskSystem loads the program over a fresh disk store rooted in the
// test's temp dir, closing it on cleanup.
func diskSystem(t *testing.T, source string) *System {
	t.Helper()
	st, err := edb.OpenDisk(filepath.Join(t.TempDir(), "edb"))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Load(source, WithStorage(st))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// TestMemoryDiskEquivalence is the byte-identical acceptance check: the
// same program evaluated over the in-memory and disk backends must produce
// identical sorted answers across engines, strategies, and partition
// counts.
func TestMemoryDiskEquivalence(t *testing.T) {
	mem := MustLoad(persistProgram)
	disk := diskSystem(t, persistProgram)
	engines := []Engine{MessagePassing, SemiNaive, MagicSets}
	for _, eng := range engines {
		for _, strat := range []string{"greedy", "qualtree", "leftright", "stats", "auto"} {
			for _, parts := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/p%d", eng, strat, parts)
				opts := []Option{WithEngine(eng), WithStrategy(strat), WithPartitions(parts)}
				want, err := mem.Eval(opts...)
				if err != nil {
					t.Fatalf("%s memory: %v", name, err)
				}
				got, err := disk.Eval(opts...)
				if err != nil {
					t.Fatalf("%s disk: %v", name, err)
				}
				if !reflect.DeepEqual(got.Tuples, want.Tuples) {
					t.Errorf("%s: disk %v, memory %v", name, got.Tuples, want.Tuples)
				}
			}
		}
	}
}

// TestDiskSubscription drives the incremental-subscription path against a
// disk-backed system: the initial snapshot and every delta must match the
// in-memory behavior, with deltas flowing through ScanSince windows of the
// segment files.
func TestDiskSubscription(t *testing.T) {
	sys := diskSystem(t, persistProgram)
	pq, err := sys.Prepare(`?- path(a, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := pq.Subscription()
	if err != nil {
		t.Fatal(err)
	}
	first := subNext(t, sub)
	if len(first) != 5 { // b c d e f
		t.Fatalf("initial snapshot = %v, want 5 rows", first)
	}
	sys.AddFact("edge", "f", "g")
	delta := subNext(t, sub)
	if len(delta) != 1 || delta[0][0] != "g" {
		t.Fatalf("delta = %v, want [[g]]", delta)
	}
	sys.AddFact("edge", "z1", "z2") // irrelevant to goal: no delta row
	sys.AddFact("edge", "g", "h")
	delta = subNext(t, sub)
	if len(delta) != 1 || delta[0][0] != "h" {
		t.Fatalf("second delta = %v, want [[h]]", delta)
	}
}

// TestOpenSystemRestart is the embedding-level restart contract: a system
// reopened over the same directory recovers facts added at runtime, keeps
// EDBVersion (so plan-cache statistics epochs and result-cache keys stay
// valid), and answers a prepared query byte-identically with zero reload.
func TestOpenSystemRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")

	sys, err := OpenSystem(dir, persistProgram)
	if err != nil {
		t.Fatal(err)
	}
	sys.AddFact("edge", "f", "g") // runtime fact: lives only in the store
	pq, err := sys.Prepare(`?- path(a, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Has("g") {
		t.Fatalf("pre-restart answers missing runtime fact: %v", want.Tuples)
	}
	version := sys.EDBVersion()
	facts := sys.DB.Facts()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSystem(dir, persistProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.EDBVersion() != version {
		t.Fatalf("EDBVersion after restart = %d, want %d (program replay must not re-insert)",
			re.EDBVersion(), version)
	}
	if re.DB.Facts() != facts {
		t.Fatalf("facts after restart = %d, want %d", re.DB.Facts(), facts)
	}
	rq, err := re.Prepare(`?- path(a, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rq.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tuples, want.Tuples) {
		t.Fatalf("restart answers %v, want %v", got.Tuples, want.Tuples)
	}
	// The recovered runtime fact must also reach the bottom-up engines,
	// which read Program.Facts rather than the store.
	ms, err := re.Eval(WithEngine(MagicSets))
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Has("g") {
		t.Errorf("magic-sets after restart lost the runtime fact: %v", ms.Tuples)
	}
}

// mpqdQuery dials a serving mpqd and runs one protocol exchange, returning
// the raw response lines.
func mpqdQuery(t *testing.T, addr string, lines ...string) []string {
	t.Helper()
	var conn net.Conn
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(20 * time.Second))
	for _, l := range lines {
		if _, err := fmt.Fprintf(conn, "%s\n", l); err != nil {
			t.Fatal(err)
		}
	}
	var out []string
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Text()
		out = append(out, line)
		if strings.HasPrefix(line, ". ") || strings.HasPrefix(line, "E ") ||
			strings.HasPrefix(line, "+ ") {
			break
		}
	}
	return out
}

// answerLines extracts and sorts the T lines of a protocol response, the
// byte-identical unit restart equivalence is checked on (derivation order
// varies run to run; plan=hit/miss in the terminal line varies with cache
// state).
func answerLines(resp []string) []string {
	var rows []string
	for _, l := range resp {
		if strings.HasPrefix(l, "T") {
			rows = append(rows, l)
		}
	}
	sort.Strings(rows)
	return rows
}

// TestMpqdStoreRestart is the full daemon restart e2e: mpqd -serve -store
// answers queries, accepts a fact over the wire, dies by SIGKILL, and a
// restarted daemon on the same store serves byte-identical answers —
// runtime fact included — without any data reloading.
func TestMpqdStoreRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "mpqd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/mpqd").CombinedOutput(); err != nil {
		t.Fatalf("building mpqd: %v\n%s", err, out)
	}
	dir := t.TempDir()
	prog := filepath.Join(dir, "q.dl")
	if err := os.WriteFile(prog, []byte(persistProgram+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "store")

	start := func() (*exec.Cmd, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		cmd := exec.Command(bin, "-program", prog, "-serve", addr, "-store", store)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd, addr
	}

	cmd, addr := start()
	defer cmd.Process.Kill()
	before := mpqdQuery(t, addr, "?- path(a, Y).")
	if len(before) == 0 || !strings.HasPrefix(before[len(before)-1], ". ") {
		t.Fatalf("first query failed: %v", before)
	}
	if resp := mpqdQuery(t, addr, "fact edge(f, g)."); len(resp) == 0 || !strings.HasPrefix(resp[len(resp)-1], "+ 1") {
		t.Fatalf("fact line rejected: %v", resp)
	}
	after := answerLines(mpqdQuery(t, addr, "?- path(a, Y)."))
	if !contains(after, "T g") {
		t.Fatalf("answers missing wire-added fact: %v", after)
	}

	// SIGKILL: no drain, no sync — the crash the journal layout tolerates.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, addr2 := start()
	defer cmd2.Process.Kill()
	recovered := answerLines(mpqdQuery(t, addr2, "?- path(a, Y)."))
	if !reflect.DeepEqual(recovered, after) {
		t.Fatalf("restarted daemon answers %v, want %v", recovered, after)
	}
	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()
}

func contains(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}
